package energy

import (
	"math"
	"testing"

	"secpb/internal/config"
)

// within asserts got is within tol (fractional) of want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.4g, want %.4g (+/-%.0f%%)", name, got, want, tol*100)
	}
}

func TestCOBCMMatchesPaperTableV(t *testing.T) {
	// Paper: COBCM, 32 entries: 4.89 mm³ SuperCap, 0.049 mm³ Li-Thin,
	// 53.6% / 2.5% of core area.
	j, err := SecPBEnergy(config.SchemeCOBCM, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := estimate("cobcm", j)
	within(t, "COBCM SuperCap mm³", e.SuperCapMM3, 4.89, 0.03)
	within(t, "COBCM Li-Thin mm³", e.LiThinMM3, 0.049, 0.03)
	within(t, "COBCM SuperCap area%", e.SuperCapPct, 53.6, 0.03)
	within(t, "COBCM Li-Thin area%", e.LiThinPct, 2.5, 0.05)
}

func TestSchemesMatchPaperTableV(t *testing.T) {
	// Paper Table V SuperCap volumes (mm³) at 32 entries. CM is the one
	// design point where the paper's own accounting is internally
	// inconsistent (see EXPERIMENTS.md), so it gets a wider band.
	want := map[config.Scheme]struct {
		mm3 float64
		tol float64
	}{
		config.SchemeCOBCM: {4.89, 0.03},
		config.SchemeOBCM:  {4.82, 0.03},
		config.SchemeBCM:   {4.72, 0.03},
		// CM is the one row where the paper's accounting cannot be
		// reproduced compositionally (see EXPERIMENTS.md); the ~20%
		// band documents the deviation rather than hiding it.
		config.SchemeCM:    {0.73, 0.25},
		config.SchemeM:     {0.67, 0.05},
		config.SchemeNoGap: {0.28, 0.05},
		config.SchemeBBB:   {0.07, 0.05},
	}
	for s, w := range want {
		j, err := SecPBEnergy(s, 32, 8)
		if err != nil {
			t.Fatal(err)
		}
		within(t, s.String()+" SuperCap mm³", estimate("", j).SuperCapMM3, w.mm3, w.tol)
	}
}

func TestEnergyMonotonicInLaziness(t *testing.T) {
	// The lazier the scheme, the more post-crash work, the bigger the
	// battery (Section VI.C). M and CM tie in our model (their late
	// work differs only by the free XOR), so the check is non-strict.
	// M and CM are compared as a pair: their late work differs only by
	// the free ciphertext XOR, but M drains a larger entry, so in a
	// compositional model M >= CM while the paper orders them the other
	// way (by 9%) — the documented deviation.
	order := []config.Scheme{
		config.SchemeBBB, config.SchemeNoGap, config.SchemeCM, config.SchemeM,
		config.SchemeBCM, config.SchemeOBCM, config.SchemeCOBCM,
	}
	prev := 0.0
	for _, s := range order {
		j, err := SecPBEnergy(s, 32, 8)
		if err != nil {
			t.Fatal(err)
		}
		if j < prev {
			t.Errorf("%v energy %.3g smaller than predecessor %.3g", s, j, prev)
		}
		prev = j
	}
}

func TestBCMToCMDrop(t *testing.T) {
	// Paper: "a significant drop in the battery required between the
	// BCM and CM model by 6.5x for SuperCap" (the BMT walk dominates).
	bcm, _ := SecPBEnergy(config.SchemeBCM, 32, 8)
	cm, _ := SecPBEnergy(config.SchemeCM, 32, 8)
	ratio := bcm / cm
	if ratio < 5 || ratio > 9 {
		t.Errorf("BCM/CM energy ratio = %.1f, paper reports ~6.5x", ratio)
	}
}

func TestEADRMatchesPaper(t *testing.T) {
	// Paper: eADR (insecure) 149.32 mm³ SuperCap — all 74752 cache
	// lines drained.
	cfg := config.Default()
	e := estimate("eadr", EADREnergy(cfg, false))
	within(t, "eADR SuperCap mm³", e.SuperCapMM3, 149.32, 0.10)
}

func TestSecureEADRRatioToCOBCM(t *testing.T) {
	// Paper: s_eADR needs ~753x the COBCM battery. Our compositional
	// worst-case model lands within the same order of magnitude (the
	// paper's s_eADR accounting is not fully specified; see
	// EXPERIMENTS.md).
	cfg := config.Default()
	sEADR := EADREnergy(cfg, true)
	cobcm, _ := SecPBEnergy(config.SchemeCOBCM, 32, 8)
	ratio := sEADR / cobcm
	if ratio < 300 || ratio > 3000 {
		t.Errorf("s_eADR/COBCM = %.0fx, paper reports 753x (same order expected)", ratio)
	}
	// And s_eADR must dwarf insecure eADR.
	if sEADR < 10*EADREnergy(cfg, false) {
		t.Error("security metadata generation should dominate s_eADR drain energy")
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	// Paper Table VI SuperCap mm³ for COBCM/NoGap at selected sizes.
	cfg := config.Default()
	sizes := []int{8, 16, 32, 64, 128, 256, 512}
	cobcm, nogap, err := Table6(cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	wantCOBCM := []float64{1.33, 2.52, 4.89, 9.63, 19.12, 38.11, 76.10}
	wantNoGap := []float64{0.08, 0.14, 0.28, 0.55, 1.10, 2.18, 4.35}
	for i := range sizes {
		within(t, cobcm[i].Name, cobcm[i].SuperCapMM3, wantCOBCM[i], 0.10)
		// The paper prints two decimals; for the smallest entries that
		// rounding alone is ~0.01 mm³, so use the larger of 5% and the
		// print quantum.
		tol := 0.05
		if q := 0.015 / wantNoGap[i]; q > tol {
			tol = q
		}
		within(t, nogap[i].Name, nogap[i].SuperCapMM3, wantNoGap[i], tol)
	}
}

func TestTable6LinearInSize(t *testing.T) {
	cfg := config.Default()
	cobcm, _, err := Table6(cfg, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cobcm[1].EnergyJ/cobcm[0].EnergyJ-2) > 1e-9 {
		t.Error("battery energy not linear in SecPB size")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table V rows = %d, want 9", len(rows))
	}
	names := []string{"cobcm", "obcm", "bcm", "cm", "m", "nogap", "s_eadr", "bbb", "eadr"}
	for i, r := range rows {
		if r.Name != names[i] {
			t.Errorf("row %d = %s, want %s", i, r.Name, names[i])
		}
		if r.SuperCapMM3 <= 0 || r.LiThinMM3 <= 0 {
			t.Errorf("row %s has non-positive volume", r.Name)
		}
		// Li-Thin is 100x denser, so 100x smaller.
		if math.Abs(r.SuperCapMM3/r.LiThinMM3-100) > 1e-6 {
			t.Errorf("row %s density ratio wrong", r.Name)
		}
	}
}

func TestSecPBEnergyErrors(t *testing.T) {
	if _, err := SecPBEnergy(config.SchemeCOBCM, 0, 8); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := SecPBEnergy(config.SchemeSP, 32, 8); err == nil {
		t.Error("SP baseline accepted")
	}
}

func TestVolumeAreaMath(t *testing.T) {
	// 1 J = 1/3600 Wh; at 1e-4 Wh/cm³ -> 2.78 cm³ = 2778 mm³.
	got := volumeMM3(1, SuperCapWhPerCm3)
	within(t, "volume of 1J", got, 2777.8, 0.001)
	// A 1000 mm³ cube has a 100 mm² face: 100/5.37 = 1862%.
	within(t, "area pct", areaPct(1000), 100/CoreAreaMM2*100, 0.001)
}
