// Package energy implements the paper's battery-capacity methodology
// (Section V.B): worst-case crash-drain energy per scheme from the
// Table III movement/compute costs, converted into supercapacitor or
// lithium-thin-film battery volume and into footprint area relative to
// a client-class core.
//
// The model was reverse-engineered from the paper's own numbers and
// validated against Table V: per drained entry, the battery must move
// the entry's valid fields (Dp always, plus O/Dc/C/M according to the
// scheme) from SecPB to PM and perform all tuple work the scheme left
// for post-crash time. Volume = energy / density; footprint assumes a
// cubic battery, area = volume^(2/3). With these rules COBCM at 32
// entries gives 4.87 mm³ SuperCap and a 53.5% core-area ratio, matching
// the paper's 4.89 mm³ / 53.6%; five of Table V's seven rows land within
// 3% and the two eager-middle rows (CM, M) within 20% — the one spot
// where the paper's own accounting is internally inconsistent (its text
// and Table V disagree on NoGap as well). See EXPERIMENTS.md.
package energy

import (
	"fmt"
	"math"

	"secpb/internal/config"
)

// Table III energy costs, in joules per byte.
const (
	SRAMAccessPerByte = 1e-12     // accessing data from SRAM
	SecPBToPMPerByte  = 11.839e-9 // moving data from SecPB (or L1) to PM
	L1ToPMPerByte     = 11.839e-9
	L2ToPMPerByte     = 11.228e-9
	L3ToPMPerByte     = 11.228e-9
	MCToPMPerByte     = 11.228e-9 // also used for PM->MC fetches
	SHA512PerByte     = 79.29e-9  // BMT node or MAC computation
	AESPerByte        = 30e-9     // data encryption (OTP generation)
)

// Battery technologies (Section V.B): energy densities in Wh/cm³.
const (
	SuperCapWhPerCm3 = 1e-4
	LiThinWhPerCm3   = 1e-2
)

// CoreAreaMM2 is the client-class core footprint the paper compares
// against (5.37 mm²).
const CoreAreaMM2 = 5.37

const (
	blockBytes = 64
	joulePerWh = 3600.0
)

// Estimate is the battery requirement for one design point.
type Estimate struct {
	Name        string
	EnergyJ     float64 // worst-case crash-drain energy
	SuperCapMM3 float64
	LiThinMM3   float64
	SuperCapPct float64 // footprint area / core area
	LiThinPct   float64
}

// volumeMM3 converts energy (J) to battery volume (mm³) at the given
// density (Wh/cm³).
func volumeMM3(energyJ, whPerCm3 float64) float64 {
	wh := energyJ / joulePerWh
	cm3 := wh / whPerCm3
	return cm3 * 1000
}

// areaPct returns the cubic-battery footprint as a percentage of the
// core area.
func areaPct(volMM3 float64) float64 {
	area := math.Pow(volMM3, 2.0/3.0)
	return area / CoreAreaMM2 * 100
}

// estimate fills the volume/area fields from EnergyJ.
func estimate(name string, energyJ float64) Estimate {
	return Estimate{
		Name:        name,
		EnergyJ:     energyJ,
		SuperCapMM3: volumeMM3(energyJ, SuperCapWhPerCm3),
		LiThinMM3:   volumeMM3(energyJ, LiThinWhPerCm3),
		SuperCapPct: areaPct(volumeMM3(energyJ, SuperCapWhPerCm3)),
		LiThinPct:   areaPct(volumeMM3(energyJ, LiThinWhPerCm3)),
	}
}

// EstimateFor converts a drain energy into the full battery estimate
// (volumes under both technologies plus core-area ratios).
func EstimateFor(name string, energyJ float64) Estimate {
	return estimate(name, energyJ)
}

// entryBytes returns how many bytes the crash drain moves per entry:
// every field the scheme populated eagerly (its valid bits are set) plus
// the plaintext block. NoGap therefore moves essentially the whole 260B
// entry (Dp+O+Dc+C+M = 257B), which reproduces the paper's Table VI
// NoGap slope of ~3 uJ/entry, while COBCM moves only the 64B Dp. The
// insecure BBB entry is just the 64B data block.
func entryBytes(s config.Scheme) float64 {
	if s == config.SchemeBBB {
		return blockBytes
	}
	e := s.Early()
	bytes := float64(blockBytes) // Dp
	if e.Counter {
		bytes++ // C
	}
	if e.OTP {
		bytes += blockBytes // O
	}
	if e.Ciphertext {
		bytes += blockBytes // Dc
	}
	if e.MAC {
		bytes += blockBytes // M
	}
	return bytes
}

// tupleLateWork returns the post-crash energy to complete one entry's
// memory tuple under the scheme's laziness, following the Section V.B
// worst-case assumptions: counter fetch misses (PM read), no BMT path
// overlap (fetch + hash every level), MAC computed but not fetched, OTP
// generated, XOR/increment free.
func tupleLateWork(s config.Scheme, bmtLevels int) float64 {
	e := s.Early()
	var j float64
	if !e.Counter {
		j += blockBytes * MCToPMPerByte // fetch counter line from PM
	}
	if !e.OTP {
		j += blockBytes * AESPerByte
	}
	if !e.BMT {
		perLevel := blockBytes*MCToPMPerByte + blockBytes*SHA512PerByte
		j += float64(bmtLevels) * perLevel
	}
	if !e.MAC {
		j += blockBytes * SHA512PerByte
	}
	return j
}

// PerEntryDrainJ returns the worst-case battery energy (J) to drain one
// SecPB entry under the scheme: move the entry's eagerly-populated
// fields to PM and complete whatever tuple work the scheme deferred.
// This is the Table V/VI per-entry slope, exported so the budgeted
// recovery drain charges exactly the arithmetic the battery was sized
// with instead of duplicating Table III. SP has no battery-backed SecPB
// and is an error.
func PerEntryDrainJ(s config.Scheme, bmtLevels int) (float64, error) {
	if s == config.SchemeSP {
		return 0, fmt.Errorf("energy: SP baseline has no battery-backed SecPB")
	}
	perEntry := entryBytes(s) * SecPBToPMPerByte
	if s != config.SchemeBBB {
		perEntry += tupleLateWork(s, bmtLevels)
	}
	return perEntry, nil
}

// SecPBEnergy returns the worst-case crash-drain energy (J) for a SecPB
// of the given size running the scheme.
func SecPBEnergy(s config.Scheme, entries, bmtLevels int) (float64, error) {
	if entries <= 0 {
		return 0, fmt.Errorf("energy: entries must be positive, got %d", entries)
	}
	perEntry, err := PerEntryDrainJ(s, bmtLevels)
	if err != nil {
		return 0, err
	}
	return float64(entries) * perEntry, nil
}

// Budget is a draining battery: a joule reserve that recovery late work
// consumes per entry. A nil *Budget is an unlimited (wall-powered)
// supply, so callers thread one pointer through both modes.
type Budget struct {
	totalJ float64
	spentJ float64
}

// NewBudget returns a battery holding the given reserve.
func NewBudget(joules float64) *Budget { return &Budget{totalJ: joules} }

// Consume withdraws j joules if the reserve covers them, and reports
// whether it did; an uncovered withdrawal leaves the reserve unchanged
// (the battery browns out before the work starts, not mid-operation).
func (b *Budget) Consume(j float64) bool {
	if b == nil {
		return true
	}
	if b.spentJ+j > b.totalJ {
		return false
	}
	b.spentJ += j
	return true
}

// SpentJ returns the energy withdrawn so far (0 for the nil budget).
func (b *Budget) SpentJ() float64 {
	if b == nil {
		return 0
	}
	return b.spentJ
}

// RemainingJ returns the reserve still available; the nil budget reports
// +Inf.
func (b *Budget) RemainingJ() float64 {
	if b == nil {
		return math.Inf(1)
	}
	return b.totalJ - b.spentJ
}

// EADREnergy returns the worst-case drain energy for eADR: every cache
// line in the hierarchy is dirty and must move to PM. If secure, each
// line additionally needs its full memory tuple generated under the
// worst-case assumptions (s_eADR).
func EADREnergy(cfg config.Config, secure bool) float64 {
	lines := func(c config.CacheConfig, perByte float64) (int, float64) {
		n := c.SizeBytes / c.BlockBytes
		return n, float64(n) * float64(c.BlockBytes) * perByte
	}
	n1, e1 := lines(cfg.L1, L1ToPMPerByte)
	n2, e2 := lines(cfg.L2, L2ToPMPerByte)
	n3, e3 := lines(cfg.L3, L3ToPMPerByte)
	total := e1 + e2 + e3
	if secure {
		perLine := tupleLateWork(config.SchemeCOBCM, cfg.BMTLevels)
		total += float64(n1+n2+n3) * perLine
	}
	return total
}

// Table5 computes the paper's Table V: battery estimates for all SecPB
// schemes at the configured size, plus s_eADR, BBB and eADR comparators.
func Table5(cfg config.Config) ([]Estimate, error) {
	order := []config.Scheme{
		config.SchemeCOBCM, config.SchemeOBCM, config.SchemeBCM,
		config.SchemeCM, config.SchemeM, config.SchemeNoGap,
	}
	var out []Estimate
	for _, s := range order {
		j, err := SecPBEnergy(s, cfg.SecPBEntries, cfg.BMTLevels)
		if err != nil {
			return nil, err
		}
		out = append(out, estimate(s.String(), j))
	}
	out = append(out, estimate("s_eadr", EADREnergy(cfg, true)))
	j, err := SecPBEnergy(config.SchemeBBB, cfg.SecPBEntries, cfg.BMTLevels)
	if err != nil {
		return nil, err
	}
	out = append(out, estimate("bbb", j))
	out = append(out, estimate("eadr", EADREnergy(cfg, false)))
	return out, nil
}

// Table6 computes the paper's Table VI: battery volume versus SecPB
// size for the COBCM (largest) and NoGap (smallest) schemes.
func Table6(cfg config.Config, sizes []int) (cobcm, nogap []Estimate, err error) {
	for _, n := range sizes {
		j, err := SecPBEnergy(config.SchemeCOBCM, n, cfg.BMTLevels)
		if err != nil {
			return nil, nil, err
		}
		cobcm = append(cobcm, estimate(fmt.Sprintf("cobcm-%d", n), j))
		j, err = SecPBEnergy(config.SchemeNoGap, n, cfg.BMTLevels)
		if err != nil {
			return nil, nil, err
		}
		nogap = append(nogap, estimate(fmt.Sprintf("nogap-%d", n), j))
	}
	return cobcm, nogap, nil
}
