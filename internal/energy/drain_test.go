package energy

import (
	"math"
	"testing"

	"secpb/internal/config"
)

// TestPerEntryDrainJPinsSecPBEnergy pins the exported per-entry helper
// against the Table V/VI battery-sizing arithmetic: SecPBEnergy must be
// exactly entries x PerEntryDrainJ for every battery-backed scheme and
// size, so the budgeted recovery drain and the battery model can never
// drift apart.
func TestPerEntryDrainJPinsSecPBEnergy(t *testing.T) {
	schemes := append([]config.Scheme{config.SchemeBBB}, config.SecPBSchemes()...)
	for _, s := range schemes {
		for _, levels := range []int{2, 8} {
			per, err := PerEntryDrainJ(s, levels)
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			if per <= 0 {
				t.Fatalf("%v: non-positive per-entry drain energy %v", s, per)
			}
			for _, entries := range []int{1, 32, 128} {
				total, err := SecPBEnergy(s, entries, levels)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if want := float64(entries) * per; total != want {
					t.Errorf("%v entries=%d levels=%d: SecPBEnergy %v != entries*PerEntryDrainJ %v",
						s, entries, levels, total, want)
				}
			}
		}
	}
	// Lazier schemes leave more tuple work for the battery.
	cobcm, _ := PerEntryDrainJ(config.SchemeCOBCM, 8)
	nogap, _ := PerEntryDrainJ(config.SchemeNoGap, 8)
	if cobcm <= nogap {
		t.Errorf("COBCM per-entry drain %v should exceed NoGap's %v", cobcm, nogap)
	}
	if _, err := PerEntryDrainJ(config.SchemeSP, 8); err == nil {
		t.Error("SP has no SecPB; PerEntryDrainJ must refuse it")
	}
}

func TestBudgetConsume(t *testing.T) {
	b := NewBudget(10)
	if !b.Consume(4) || !b.Consume(6) {
		t.Fatal("covered withdrawals refused")
	}
	if b.Consume(0.001) {
		t.Fatal("overdraw allowed")
	}
	if b.SpentJ() != 10 || b.RemainingJ() != 0 {
		t.Fatalf("spent %v remaining %v after exact exhaustion", b.SpentJ(), b.RemainingJ())
	}

	// The nil budget is wall power.
	var wall *Budget
	if !wall.Consume(1e9) {
		t.Fatal("nil budget refused a withdrawal")
	}
	if !math.IsInf(wall.RemainingJ(), 1) || wall.SpentJ() != 0 {
		t.Fatal("nil budget must report infinite reserve, zero spend")
	}
}
