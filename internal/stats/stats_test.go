package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := NewCounter("stores")
	if c.Value() != 0 || c.Name() != "stores" {
		t.Fatal("fresh counter state wrong")
	}
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not zero")
	}
	for _, v := range []float64{2, 4, 6} {
		m.Add(v)
	}
	if m.Value() != 4 {
		t.Errorf("mean = %v, want 4", m.Value())
	}
	if m.Min() != 2 || m.Max() != 6 || m.N() != 3 || m.Sum() != 12 {
		t.Errorf("min/max/n/sum = %v/%v/%v/%v", m.Min(), m.Max(), m.N(), m.Sum())
	}
}

func TestGeoMean(t *testing.T) {
	var g GeoMean
	if g.Value() != 0 {
		t.Fatal("empty geomean not zero")
	}
	for _, v := range []float64{1, 4, 16} {
		if err := g.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(g.Value()-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", g.Value())
	}
	if err := g.Add(0); err == nil {
		t.Error("Add(0) did not error")
	}
	if err := g.Add(-1); err == nil {
		t.Error("Add(-1) did not error")
	}
}

func TestGeoMeanAtMostArithmetic(t *testing.T) {
	check := func(a, b, c uint16) bool {
		x := float64(a) + 1
		y := float64(b) + 1
		z := float64(c) + 1
		var g GeoMean
		var m Mean
		for _, v := range []float64{x, y, z} {
			_ = g.Add(v)
			m.Add(v)
		}
		return g.Value() <= m.Value()+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []uint64{0, 5, 9, 10, 35, 39, 40, 1000} {
		h.Add(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(3) != 2 {
		t.Errorf("buckets = %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Mean() != (0+5+9+10+35+39+40+1000)/8.0 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10, 1)
	for i := uint64(0); i < 100; i++ {
		h.Add(i % 10)
	}
	if p := h.Percentile(0.5); p != 5 {
		t.Errorf("P50 = %d, want 5", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Errorf("P100 = %d, want 10", p)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0,0) did not panic")
		}
	}()
	NewHistogram(0, 0)
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	s.Counter("b").Inc()
	if s.Get("a") != 1 || s.Get("b") != 3 {
		t.Errorf("a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	if s.Get("missing") != 0 {
		t.Error("missing counter not zero")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Table IV", "Model", "Slowdown")
	tab.AddRow("COBCM", "1.3%")
	tab.AddRow("NoGap", "118.4%")
	out := tab.String()
	for _, want := range []string{"Table IV", "Model", "COBCM", "118.4%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(1.23456)
	if !strings.Contains(tab.String(), "1.23") {
		t.Errorf("float not formatted: %s", tab.String())
	}
}

func TestBarSeries(t *testing.T) {
	bs := NewBarSeries("Fig 6", "nogap", "cobcm")
	bs.SetUnit("x")
	bs.Add("gamess", 18.2, 1.096)
	bs.Add("povray", 5.0, 1.01)
	out := bs.String()
	for _, want := range []string{"Fig 6", "gamess", "nogap", "18.200x"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar chart missing %q:\n%s", want, out)
		}
	}
	if got := bs.Value("gamess", 1); got != 1.096 {
		t.Errorf("Value = %v", got)
	}
	if labels := bs.Labels(); len(labels) != 2 || labels[0] != "gamess" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestBarSeriesAddPanicsOnArity(t *testing.T) {
	bs := NewBarSeries("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	bs.Add("l", 1.0)
}

func TestPercent(t *testing.T) {
	if got := Percent(1.148); got != "+14.8%" {
		t.Errorf("Percent(1.148) = %q", got)
	}
	if got := Percent(0.9); got != "-10.0%" {
		t.Errorf("Percent(0.9) = %q", got)
	}
}
