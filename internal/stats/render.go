package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// result tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a row of pre-formatted cells.
func (t *Table) AddRowStrings(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// BarSeries renders a labelled horizontal bar chart — the plain-text
// analogue of the paper's per-benchmark figures. Each label carries one
// value per series.
type BarSeries struct {
	title  string
	series []string
	labels []string
	values map[string][]float64
	unit   string
}

// NewBarSeries returns a chart with the given title and series names.
func NewBarSeries(title string, series ...string) *BarSeries {
	return &BarSeries{title: title, series: series, values: map[string][]float64{}}
}

// SetUnit sets the value suffix (e.g. "x" for normalized execution time).
func (b *BarSeries) SetUnit(unit string) { b.unit = unit }

// Add records the values for one label, in series order. It panics if the
// number of values does not match the number of series.
func (b *BarSeries) Add(label string, vals ...float64) {
	if len(vals) != len(b.series) {
		panic(fmt.Sprintf("stats: BarSeries.Add got %d values for %d series", len(vals), len(b.series)))
	}
	b.labels = append(b.labels, label)
	b.values[label] = append([]float64(nil), vals...)
}

// Labels returns the labels in insertion order.
func (b *BarSeries) Labels() []string { return b.labels }

// Value returns the value recorded for (label, series index).
func (b *BarSeries) Value(label string, series int) float64 {
	return b.values[label][series]
}

// String renders the chart with one bar row per (label, series) pair,
// scaled so the largest value occupies maxBarWidth characters.
func (b *BarSeries) String() string {
	const maxBarWidth = 50
	maxVal := 0.0
	for _, vals := range b.values {
		for _, v := range vals {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	labelWidth := 0
	for _, l := range b.labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	seriesWidth := 0
	for _, s := range b.series {
		if len(s) > seriesWidth {
			seriesWidth = len(s)
		}
	}
	var sb strings.Builder
	if b.title != "" {
		sb.WriteString(b.title)
		sb.WriteByte('\n')
	}
	for _, label := range b.labels {
		for si, sname := range b.series {
			v := b.values[label][si]
			n := int(v / maxVal * maxBarWidth)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&sb, "%-*s %-*s |%s %.3f%s\n",
				labelWidth, label, seriesWidth, sname,
				strings.Repeat("#", n), v, b.unit)
		}
		if len(b.series) > 1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Percent formats a ratio (1.0 = baseline) as a percentage overhead
// string like the paper's "+14.8%".
func Percent(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
