// Package stats provides lightweight statistics collection (counters,
// histograms, means) and plain-text rendering of tables and bar-series
// "figures" used by the experiment harness to regenerate the paper's
// tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a named monotonic event counter.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a counter with the given name.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Mean accumulates a running arithmetic mean and extrema.
type Mean struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records one observation.
func (m *Mean) Add(v float64) {
	if m.n == 0 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	m.n++
	m.sum += v
}

// N returns the number of observations.
func (m *Mean) N() uint64 { return m.n }

// Value returns the arithmetic mean, or 0 if empty.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Sum returns the sum of observations.
func (m *Mean) Sum() float64 { return m.sum }

// Min returns the smallest observation, or 0 if empty.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest observation, or 0 if empty.
func (m *Mean) Max() float64 { return m.max }

// GeoMean computes a geometric mean of strictly positive values; zero or
// negative observations are rejected. The paper reports average slowdowns;
// geometric means are the conventional way to average normalized ratios.
type GeoMean struct {
	n      uint64
	logSum float64
}

// Add records one observation. It returns an error for v <= 0.
func (g *GeoMean) Add(v float64) error {
	if v <= 0 {
		return fmt.Errorf("stats: geometric mean requires positive values, got %v", v)
	}
	g.n++
	g.logSum += math.Log(v)
	return nil
}

// Value returns the geometric mean, or 0 if empty.
func (g *GeoMean) Value() float64 {
	if g.n == 0 {
		return 0
	}
	return math.Exp(g.logSum / float64(g.n))
}

// N returns the number of observations.
func (g *GeoMean) N() uint64 { return g.n }

// Histogram collects integer observations into fixed-width buckets plus
// an overflow bucket.
type Histogram struct {
	width    uint64
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
}

// NewHistogram returns a histogram with nbuckets buckets of the given
// width; values >= nbuckets*width land in the overflow bucket.
func NewHistogram(nbuckets int, width uint64) *Histogram {
	if nbuckets <= 0 || width == 0 {
		panic("stats: NewHistogram requires nbuckets > 0 and width > 0")
	}
	return &Histogram{width: width, buckets: make([]uint64, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	idx := v / h.width
	if idx >= uint64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow returns the overflow-bucket count.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Percentile returns the smallest bucket upper bound below which at least
// frac (0..1) of the observations fall. Overflow observations are treated
// as one bucket past the end.
func (h *Histogram) Percentile(frac float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(frac * float64(h.count)))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return uint64(i+1) * h.width
		}
	}
	return uint64(len(h.buckets)+1) * h.width
}

// Set is a string-keyed collection of counters with stable iteration
// order, used by the engine to expose its statistics.
type Set struct {
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns the counter with the given name, creating it on first
// use.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = NewCounter(name)
		s.counters[name] = c
	}
	return c
}

// Get returns the value of the named counter (0 if absent).
func (s *Set) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns the counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
