package workload

import (
	"math"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 18 {
		t.Fatalf("profile count = %d, want 18 (paper uses 18 SPEC2006 benchmarks)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestPaperLandmarks(t *testing.T) {
	gamess, err := ByName("gamess")
	if err != nil {
		t.Fatal(err)
	}
	if gamess.StoresPerKilo != 47.4 {
		t.Errorf("gamess PPTI target = %v, want 47.4", gamess.StoresPerKilo)
	}
	povray, err := ByName("povray")
	if err != nil {
		t.Fatal(err)
	}
	if povray.StoresPerKilo != 38.8 {
		t.Errorf("povray PPTI target = %v, want 38.8", povray.StoresPerKilo)
	}
	bwaves, _ := ByName("bwaves")
	if bwaves.Pattern != Stream {
		t.Error("bwaves must be a streaming writer (capacity-insensitive NWPE)")
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("gamess")
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"zero stores", func(p *Profile) { p.StoresPerKilo = 0 }},
		{"too many ops", func(p *Profile) { p.StoresPerKilo = 500; p.LoadsPerKilo = 500 }},
		{"zero burst", func(p *Profile) { p.Burst = 0 }},
		{"huge burst", func(p *Profile) { p.Burst = 100 }},
		{"zero ws", func(p *Profile) { p.WriteWorkingSet = 0 }},
		{"hot without skew", func(p *Profile) { p.Pattern = Hot; p.ZipfSkew = 0 }},
		{"bad recent frac", func(p *Profile) { p.ReadRecentFrac = 2 }},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a, err := Generate(p, 99, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(p, 99, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between same-seed runs", i)
		}
	}
	c, _ := Generate(p, 100, 2000)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorOpsAreValid(t *testing.T) {
	for _, p := range Profiles() {
		ops, err := Generate(p, 1, 500)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(ops) != 500 {
			t.Fatalf("%s: generated %d ops", p.Name, len(ops))
		}
		for i, op := range ops {
			if err := op.Validate(); err != nil {
				t.Fatalf("%s op %d: %v", p.Name, i, err)
			}
			if op.Kind == trace.Fence {
				t.Fatalf("%s op %d: unexpected fence", p.Name, i)
			}
		}
	}
}

// measurePPTI computes stores per kilo-instruction over a generated
// stream.
func measurePPTI(t *testing.T, name string, nops int) float64 {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Generate(p, 7, nops)
	if err != nil {
		t.Fatal(err)
	}
	var instrs, stores uint64
	for _, op := range ops {
		instrs += op.Instructions()
		if op.Kind == trace.Store {
			stores++
		}
	}
	return float64(stores) / float64(instrs) * 1000
}

func TestPPTICalibration(t *testing.T) {
	// The measured store rate must land within 15% of each profile's
	// target (the generator draws gaps stochastically).
	for _, p := range Profiles() {
		got := measurePPTI(t, p.Name, 50000)
		want := p.StoresPerKilo
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%s: measured PPTI %.1f, want %.1f +/-15%%", p.Name, got, want)
		}
	}
}

func TestStoreRegionDisjointFromScanRegion(t *testing.T) {
	p, _ := ByName("mcf")
	ops, _ := Generate(p, 3, 20000)
	for _, op := range ops {
		if op.Kind == trace.Store && op.Addr >= readBase {
			t.Fatal("store landed in read-only scan region")
		}
	}
}

func TestStreamPatternDoesNotRevisitQuickly(t *testing.T) {
	p, _ := ByName("bwaves")
	ops, _ := Generate(p, 3, 30000)
	lastSeen := map[addr.Block]int{}
	minRedist := 1 << 30
	var stores int
	var prev addr.Block
	for _, op := range ops {
		if op.Kind != trace.Store {
			continue
		}
		b := addr.BlockOf(op.Addr)
		if b != prev { // ignore within-burst repeats
			if at, ok := lastSeen[b]; ok {
				if d := stores - at; d < minRedist {
					minRedist = d
				}
			}
			lastSeen[b] = stores
			prev = b
		}
		stores++
	}
	// A streaming writer over a 128K-block footprint must have reuse
	// distance far larger than any SecPB.
	if minRedist < 10000 {
		t.Errorf("bwaves block reuse distance %d too small for a stream", minRedist)
	}
}

func TestHotPatternRevisits(t *testing.T) {
	p, _ := ByName("povray")
	ops, _ := Generate(p, 3, 30000)
	blocks := map[addr.Block]int{}
	for _, op := range ops {
		if op.Kind == trace.Store {
			blocks[addr.BlockOf(op.Addr)]++
		}
	}
	// povray writes a 96-block hot set; the stream must concentrate.
	if len(blocks) > p.WriteWorkingSet {
		t.Errorf("povray touched %d blocks, working set is %d", len(blocks), p.WriteWorkingSet)
	}
	max := 0
	for _, c := range blocks {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Errorf("hot set not hot: max writes to one block = %d", max)
	}
}

func TestGeneratorLimit(t *testing.T) {
	p, _ := ByName("namd")
	g, err := NewGenerator(p, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("limit 10 produced %d ops", n)
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 18 || names[4] != "gamess" {
		t.Errorf("Names() = %v", names)
	}
}

func TestPatternString(t *testing.T) {
	if Stream.String() != "stream" || Hot.String() != "hot" || Scan.String() != "scan" {
		t.Error("pattern names wrong")
	}
}

func BenchmarkGenerate(b *testing.B) {
	p, _ := ByName("gcc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, _ := NewGenerator(p, 1, 0)
		for j := 0; j < 10000; j++ {
			g.Next()
		}
	}
}

func TestNextBatchMatchesScalarStream(t *testing.T) {
	for _, name := range []string{"povray", "gamess", "mcf"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const n = 10000
		scalar, err := NewGenerator(p, 42, n)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := NewGenerator(p, 42, n)
		if err != nil {
			t.Fatal(err)
		}
		b := trace.NewBatch(257) // odd capacity so batch edges shift around
		var got []trace.Op
		for batched.NextBatch(b) {
			if b.Len() > 257 {
				t.Fatalf("batch overfilled: %d", b.Len())
			}
			for i := 0; i < b.Len(); i++ {
				got = append(got, b.Op(i))
			}
		}
		var want []trace.Op
		for {
			op, ok := scalar.Next()
			if !ok {
				break
			}
			want = append(want, op)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: batched stream has %d ops, scalar %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: op %d differs: batched %+v, scalar %+v", name, i, got[i], want[i])
			}
		}
	}
}
