package workload

import (
	"bytes"
	"math"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/trace"
)

func TestZooProfilesValidate(t *testing.T) {
	ps := ZooProfiles()
	if len(ps) != 8 {
		t.Fatalf("zoo profile count = %d, want 8", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range Profiles() {
		seen[p.Name] = true
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("zoo profile %s duplicates another profile", p.Name)
		}
		seen[p.Name] = true
		if !p.Pattern.zoo() {
			t.Errorf("%s: pattern %v is not a zoo pattern", p.Name, p.Pattern)
		}
	}
	names := ZooNames()
	if len(names) != len(ps) || names[0] != "kvstore" || names[len(names)-1] != "adv-battery" {
		t.Errorf("ZooNames() = %v", names)
	}
}

func TestZooByName(t *testing.T) {
	p, err := ByName("wal")
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != WAL {
		t.Errorf("ByName(wal).Pattern = %v", p.Pattern)
	}
	// SPEC proxies still resolve.
	if _, err := ByName("gamess"); err != nil {
		t.Errorf("ByName(gamess): %v", err)
	}
}

func TestZooPatternStrings(t *testing.T) {
	want := map[Pattern]string{
		KV: "kv", WAL: "wal", GC: "gc", Tenants: "tenants",
		AdvOccupancy: "adv-occupancy", AdvBMTBlast: "adv-bmtblast", AdvBattery: "adv-battery",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
		if !p.zoo() {
			t.Errorf("%v not classified as zoo", p)
		}
	}
	if Stream.zoo() || Hot.zoo() || Scan.zoo() {
		t.Error("SPEC-proxy pattern classified as zoo")
	}
}

func TestZooValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"kv without skew", func(p *Profile) { p.Pattern = KV; p.ZipfSkew = 0 }},
		{"tenants without skew", func(p *Profile) { p.Pattern = Tenants; p.Tenants = 4; p.ZipfSkew = 0 }},
		{"bad delete frac", func(p *Profile) { p.DeleteFrac = 1.5 }},
		{"wal without checkpoint", func(p *Profile) { p.Pattern = WAL; p.CheckpointEvery = 0 }},
		{"single tenant", func(p *Profile) { p.Pattern = Tenants; p.Tenants = 1 }},
	}
	good, _ := ByName("kvstore")
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestZooDeterminism: every zoo stream is a pure function of
// (profile, seed); different seeds diverge.
func TestZooDeterminism(t *testing.T) {
	for _, p := range ZooProfiles() {
		a, err := Generate(p, 99, 3000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		b, _ := Generate(p, 99, 3000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: op %d differs between same-seed runs", p.Name, i)
			}
		}
		c, _ := Generate(p, 100, 3000)
		diff := 0
		for i := range a {
			if a[i] != c[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Errorf("%s: different seeds produced identical streams", p.Name)
		}
	}
}

// TestZooOpsAreValid: every op of every zoo stream passes Op.Validate.
func TestZooOpsAreValid(t *testing.T) {
	for _, p := range ZooProfiles() {
		ops, err := Generate(p, 1, 5000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(ops) != 5000 {
			t.Fatalf("%s: generated %d ops", p.Name, len(ops))
		}
		for i, op := range ops {
			if err := op.Validate(); err != nil {
				t.Fatalf("%s op %d: %v", p.Name, i, err)
			}
		}
	}
}

// TestZooRegionsDisjoint: stores stay inside the persistent region
// (below readBase) and non-recent loads stay out of it, for every zoo
// generator — and the WAL's log never collides with any home region.
func TestZooRegionsDisjoint(t *testing.T) {
	for _, p := range ZooProfiles() {
		ops, _ := Generate(p, 3, 20000)
		for i, op := range ops {
			if op.Kind == trace.Store && op.Addr >= readBase {
				t.Fatalf("%s op %d: store %#x in read region", p.Name, i, op.Addr)
			}
		}
	}
	// WAL home blocks stay below the log base; log blocks at or above it.
	wal, _ := ByName("wal")
	ops, _ := Generate(wal, 5, 30000)
	for i, op := range ops {
		if op.Kind != trace.Store {
			continue
		}
		if op.Addr >= walLogBase {
			if off := op.Addr - walLogBase; off >= uint64(wal.WriteWorkingSet)*addr.BlockBytes {
				t.Fatalf("wal op %d: log store %#x beyond log region", i, op.Addr)
			}
		} else if off := op.Addr - persistBase; off >= uint64(wal.WriteWorkingSet)*addr.BlockBytes {
			t.Fatalf("wal op %d: home store %#x beyond home region", i, op.Addr)
		}
	}
	// Tenant write regions are disjoint per tenant by construction:
	// every store lands inside the Tenants*WriteWorkingSet span.
	tm, _ := ByName("tenantmix")
	ops, _ = Generate(tm, 5, 30000)
	span := uint64(tm.Tenants) * uint64(tm.WriteWorkingSet) * addr.BlockBytes
	for i, op := range ops {
		if op.Kind == trace.Store {
			if off := op.Addr - persistBase; off >= span {
				t.Fatalf("tenantmix op %d: store %#x outside tenant span", i, op.Addr)
			}
		}
	}
}

// zooStats measures the empirical stream statistics a calibration band
// is written against.
type zooStats struct {
	ppti     float64 // stores per kilo-instruction
	nwpe     float64 // stores per distinct-block episode (coalescing proxy)
	fences   int
	distinct int
}

func measureZoo(t *testing.T, name string, nops int) zooStats {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Generate(p, 7, nops)
	if err != nil {
		t.Fatal(err)
	}
	var instrs, stores uint64
	blocks := map[addr.Block]bool{}
	var entries uint64 // distinct-block transitions of the store stream
	var prev addr.Block
	var s zooStats
	for _, op := range ops {
		instrs += op.Instructions()
		switch op.Kind {
		case trace.Store:
			stores++
			b := addr.BlockOf(op.Addr)
			blocks[b] = true
			if b != prev {
				entries++
				prev = b
			}
		case trace.Fence:
			s.fences++
		}
	}
	s.ppti = float64(stores) / float64(instrs) * 1000
	s.nwpe = float64(stores) / float64(entries)
	s.distinct = len(blocks)
	return s
}

// TestZooPPTICalibration: measured persist rate lands within 15% of
// each profile's StoresPerKilo target, like the SPEC proxies.
func TestZooPPTICalibration(t *testing.T) {
	for _, p := range ZooProfiles() {
		got := measureZoo(t, p.Name, 60000).ppti
		if math.Abs(got-p.StoresPerKilo)/p.StoresPerKilo > 0.15 {
			t.Errorf("%s: measured PPTI %.1f, want %.1f +/-15%%", p.Name, got, p.StoresPerKilo)
		}
	}
}

// TestZooNWPEBands: the stream-level coalescing proxy (consecutive
// same-block stores) lands in each generator's designed band — KV/WAL
// records coalesce to their record length, GC and the adversarial
// walkers pin at 1 (every store a fresh entry).
func TestZooNWPEBands(t *testing.T) {
	bands := map[string][2]float64{
		"kvstore":       {2.5, 4.5},
		"kvheavy":       {3.5, 6.5},
		"wal":           {3.0, 8.5},
		"gcmark":        {1.0, 1.1},
		"tenantmix":     {3.5, 7.0},
		"adv-occupancy": {1.0, 1.05},
		"adv-bmtblast":  {1.0, 1.05},
		"adv-battery":   {1.0, 1.05},
	}
	for name, band := range bands {
		got := measureZoo(t, name, 60000).nwpe
		if got < band[0] || got > band[1] {
			t.Errorf("%s: stream NWPE %.2f outside [%.2f, %.2f]", name, got, band[0], band[1])
		}
	}
}

// TestZooShapes: structural properties that make each generator what
// it claims to be.
func TestZooShapes(t *testing.T) {
	// WAL: fences present, one per record episode (roughly stores/Burst).
	wal := measureZoo(t, "wal", 60000)
	if wal.fences == 0 {
		t.Error("wal: no fences")
	}
	// Occupancy maximizer: cycles the whole working set — every store a
	// distinct block until wraparound.
	occ, _ := ByName("adv-occupancy")
	if got := measureZoo(t, "adv-occupancy", 60000).distinct; got != occ.WriteWorkingSet {
		t.Errorf("adv-occupancy touched %d blocks, want the full %d working set", got, occ.WriteWorkingSet)
	}
	// Blast walker: consecutive stores land on different pages.
	ops, _ := Generate(mustByName(t, "adv-bmtblast"), 11, 20000)
	var prevPage uint64
	first := true
	for _, op := range ops {
		if op.Kind != trace.Store {
			continue
		}
		page := op.Addr / addr.PageBytes
		if !first && page == prevPage {
			t.Fatal("adv-bmtblast: consecutive stores on the same page")
		}
		prevPage, first = page, false
	}
	// Battery pessimizer: zero-gap trains — most stores carry no gap.
	ops, _ = Generate(mustByName(t, "adv-battery"), 11, 20000)
	var stores, zeroGap int
	for _, op := range ops {
		if op.Kind == trace.Store {
			stores++
			if op.Gap == 0 {
				zeroGap++
			}
		}
	}
	if float64(zeroGap)/float64(stores) < 0.9 {
		t.Errorf("adv-battery: only %d/%d stores gapless", zeroGap, stores)
	}
	// GC: loads dominate and chase with no spatial locality (distinct
	// blocks between consecutive loads nearly always).
	ops, _ = Generate(mustByName(t, "gcmark"), 11, 20000)
	var loads, moved int
	var prevLoad uint64
	for _, op := range ops {
		if op.Kind != trace.Load {
			continue
		}
		loads++
		if addr.BlockOf(op.Addr) != addr.BlockOf(prevLoad) {
			moved++
		}
		prevLoad = op.Addr
	}
	if loads == 0 || float64(moved)/float64(loads) < 0.95 {
		t.Errorf("gcmark: pointer chase too local (%d/%d moves)", moved, loads)
	}
}

func mustByName(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestZooNextBatchMatchesScalar: the batched path emits the identical
// stream for zoo state machines too.
func TestZooNextBatchMatchesScalar(t *testing.T) {
	for _, name := range ZooNames() {
		p := mustByName(t, name)
		const n = 8000
		scalar, err := NewGenerator(p, 42, n)
		if err != nil {
			t.Fatal(err)
		}
		batched, _ := NewGenerator(p, 42, n)
		b := trace.NewBatch(257)
		var got []trace.Op
		for batched.NextBatch(b) {
			for i := 0; i < b.Len(); i++ {
				got = append(got, b.Op(i))
			}
		}
		var want []trace.Op
		for {
			op, ok := scalar.Next()
			if !ok {
				break
			}
			want = append(want, op)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: batched %d ops, scalar %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: op %d differs", name, i)
			}
		}
	}
}

// TestZooCompression is the acceptance gate: across the zoo, SPB2
// encodes the trace bytes at least 2x smaller than SPB1, with op-exact
// decode; no single zoo trace regresses below 1.4x.
func TestZooCompression(t *testing.T) {
	const nops = 40000
	var total1, total2 int
	for _, p := range ZooProfiles() {
		ops, err := Generate(p, 13, nops)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var b1 bytes.Buffer
		w1 := trace.NewWriter(&b1)
		for _, op := range ops {
			if err := w1.Write(op); err != nil {
				t.Fatalf("%s: SPB1 write: %v", p.Name, err)
			}
		}
		if err := w1.Flush(); err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		w2 := trace.NewSegWriter(&b2, 0)
		for _, op := range ops {
			if err := w2.Write(op); err != nil {
				t.Fatalf("%s: SPB2 write: %v", p.Name, err)
			}
		}
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}
		// Op-exact decode.
		got, err := trace.NewSegReader(bytes.NewReader(b2.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if len(got) != len(ops) {
			t.Fatalf("%s: decoded %d ops, want %d", p.Name, len(got), len(ops))
		}
		for i := range ops {
			if got[i] != ops[i] {
				t.Fatalf("%s: op %d decode mismatch", p.Name, i)
			}
		}
		ratio := float64(b1.Len()) / float64(b2.Len())
		t.Logf("%s: SPB1 %d B, SPB2 %d B, ratio %.2fx", p.Name, b1.Len(), b2.Len(), ratio)
		if ratio < 1.4 {
			t.Errorf("%s: SPB2 only %.2fx smaller than SPB1", p.Name, ratio)
		}
		total1 += b1.Len()
		total2 += b2.Len()
	}
	if ratio := float64(total1) / float64(total2); ratio < 2.0 {
		t.Errorf("zoo aggregate: SPB2 only %.2fx smaller than SPB1 (%d vs %d bytes), want >= 2x",
			ratio, total2, total1)
	}
}
