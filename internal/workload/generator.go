package workload

import (
	"secpb/internal/addr"
	"secpb/internal/trace"
	"secpb/internal/xrand"
)

// Region bases keep the persistent (written) region and the read-only
// scan region disjoint so cache-set interactions stay realistic.
const (
	persistBase = uint64(0x1000_0000)
	readBase    = uint64(0x8000_0000)
)

// Generator produces the deterministic op stream for one profile. It
// implements trace.Source.
type Generator struct {
	p Profile
	r *xrand.Rand

	zipf *xrand.Zipf // Hot pattern block chooser
	scan uint64      // Scan/Stream cursor

	curBlock  addr.Block // block the current store burst writes to
	burstLeft int        // stores remaining in the burst
	wordIdx   int        // next word within the block for the burst
	gapDebt   uint32     // deferred instruction gap from chained bursts

	recent    []addr.Block // ring of recently written blocks for loads
	recentPos int

	z *zooState // state machine for zoo patterns (nil for SPEC proxies)

	emitted uint64 // ops emitted
	limit   uint64 // max ops; 0 means unlimited
}

// NewGenerator returns a generator for profile p seeded with seed. If
// maxOps > 0 the stream ends after maxOps operations.
func NewGenerator(p Profile, seed uint64, maxOps uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := xrand.New(seed ^ hashName(p.Name))
	g := &Generator{
		p:      p,
		r:      r,
		recent: make([]addr.Block, 64),
		limit:  maxOps,
	}
	if p.Pattern == Hot {
		g.zipf = xrand.NewZipf(r, p.WriteWorkingSet, p.ZipfSkew)
	}
	if p.Pattern.zoo() {
		g.initZoo()
	}
	return g, nil
}

// hashName mixes the benchmark name into the seed so same-seed runs of
// different benchmarks do not correlate.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// nextStoreBlock picks the block for a new store burst.
func (g *Generator) nextStoreBlock() addr.Block {
	var idx uint64
	switch g.p.Pattern {
	case Stream:
		idx = g.scan % uint64(g.p.WriteWorkingSet)
		g.scan++
	case Scan:
		idx = g.scan % uint64(g.p.WriteWorkingSet)
		g.scan++
	case Hot:
		idx = uint64(g.zipf.Next())
	}
	return addr.BlockOf(persistBase + idx*addr.BlockBytes)
}

// gapFor returns the non-memory instruction gap preceding one op, drawn
// so the long-run op rate matches the profile.
func (g *Generator) gapFor() uint32 {
	perKilo := g.p.StoresPerKilo + g.p.LoadsPerKilo
	mean := 1000/perKilo - 1
	if mean < 0 {
		mean = 0
	}
	// Uniform in [0.5*mean, 1.5*mean] keeps the mean while adding jitter.
	lo := 0.5 * mean
	return uint32(lo + g.r.Float64()*mean)
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Op, bool) {
	if g.limit > 0 && g.emitted >= g.limit {
		return trace.Op{}, false
	}
	return g.next(), true
}

// next emits one op unconditionally (the caller has checked the limit).
func (g *Generator) next() trace.Op {
	g.emitted++

	// Zoo patterns run their own state machines (zoo.go).
	if g.z != nil {
		return g.zooNext()
	}

	// A store burst in progress keeps priority so within-block locality
	// is contiguous, as produced by real compilers (struct/buffer fills).
	if g.burstLeft > 0 || g.r.Bool(g.burstStartProb()) {
		return g.nextStore()
	}
	return g.nextLoad()
}

// NextBatch implements trace.BatchSource: it fills b's columns directly
// from the generator state machine, emitting exactly the stream Next
// would, with no per-op interface dispatch on the replay side.
func (g *Generator) NextBatch(b *trace.Batch) bool {
	b.Reset()
	for !b.Full() {
		if g.limit > 0 && g.emitted >= g.limit {
			break
		}
		b.Append(g.next())
	}
	return b.Len() > 0
}

// burstStartProb returns the probability of starting a store burst when
// no burst is active, chosen so the long-run store fraction of the op
// stream equals StoresPerKilo/(StoresPerKilo+LoadsPerKilo) despite each
// burst contributing Burst stores on average: with store fraction f and
// mean burst length B, a renewal argument gives q = f / (B(1-f) + f).
func (g *Generator) burstStartProb() float64 {
	f := g.p.StoresPerKilo / (g.p.StoresPerKilo + g.p.LoadsPerKilo)
	b := float64(g.p.Burst)
	return f / (b*(1-f) + f)
}

func (g *Generator) nextStore() trace.Op {
	var gap uint32
	if g.burstLeft == 0 {
		g.curBlock = g.nextStoreBlock()
		// Burst length: 1..2*Burst-1 uniform, mean = Burst.
		g.burstLeft = 1 + g.r.Intn(2*g.p.Burst-1)
		g.wordIdx = g.r.Intn(8)
		g.recent[g.recentPos] = g.curBlock
		g.recentPos = (g.recentPos + 1) % len(g.recent)
		// Stores cluster: the whole burst's instruction gap lands
		// before its first store and the rest issue back-to-back, as
		// compiled struct/buffer fills do. Bursts further cluster into
		// trains (several blocks written consecutively, e.g. multiple
		// struct fills): with probability 1/2 a burst chains to the
		// previous one with zero gap and its gap budget is deferred,
		// keeping the long-run store rate intact. This burstiness is
		// what exposes store-acceptance latency past the store buffer.
		for i := 0; i < g.burstLeft; i++ {
			gap += g.gapFor()
		}
		if g.emitted > 1 && g.r.Bool(0.5) {
			g.gapDebt += gap
			gap = 0
		} else {
			gap += g.gapDebt
			g.gapDebt = 0
		}
	}
	g.burstLeft--
	op := trace.Op{
		Kind: trace.Store,
		Addr: g.curBlock.Addr() + uint64(g.wordIdx)*8,
		Size: 8,
		Data: g.r.Uint64(),
		Gap:  gap,
	}
	g.wordIdx = (g.wordIdx + 1) % 8
	return op
}

func (g *Generator) nextLoad() trace.Op {
	var a uint64
	if g.r.Bool(g.p.ReadRecentFrac) && g.recent[0] != 0 {
		// Load-after-store locality: read a recently written block.
		a = g.recent[g.r.Intn(len(g.recent))].Addr()
	} else {
		idx := g.r.Uint64n(uint64(g.p.ReadWorkingSet))
		a = readBase + idx*addr.BlockBytes
	}
	return trace.Op{
		Kind: trace.Load,
		Addr: a + uint64(g.r.Intn(8))*8,
		Size: 8,
		Gap:  g.gapFor(),
	}
}

// Generate materializes n ops into a slice (convenience for tests and
// small experiments; large runs should stream via Next).
func Generate(p Profile, seed uint64, n int) ([]trace.Op, error) {
	g, err := NewGenerator(p, seed, uint64(n))
	if err != nil {
		return nil, err
	}
	ops := make([]trace.Op, 0, n)
	for {
		op, ok := g.Next()
		if !ok {
			return ops, nil
		}
		ops = append(ops, op)
	}
}
