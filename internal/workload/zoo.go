// The workload zoo: application-class and adversarial generators beyond
// the SPEC CPU2006 proxies. Zuo et al.'s SecPM motivates evaluating
// secure-NVM designs on write-pattern-sensitive application workloads
// (KV stores, logs); Yao & Venkataramani's persistence-based attacks
// motivate adversarial streams that deliberately maximize persist-buffer
// occupancy, BMT blast radius, and battery drain. Each zoo pattern is a
// deterministic seeded state machine inside Generator, so zoo streams
// record, replay, and memoize exactly like the SPEC proxies.
package workload

import (
	"secpb/internal/addr"
	"secpb/internal/trace"
	"secpb/internal/xrand"
)

// walLogBase keeps the WAL's append-only log region disjoint from the
// persistBase home region every pattern rewrites.
const walLogBase = persistBase + 0x0800_0000

// zooState carries the per-pattern machinery the SPEC-proxy burst
// fields do not cover.
type zooState struct {
	seq uint64 // monotone store payload (sequence number)

	// KV / Tenants / WAL write-episode state.
	burstLeft  int        // stores remaining in the current episode
	curBlock   addr.Block // block the episode writes
	wordIdx    int        // next word within the block
	logEpisode bool       // WAL: current episode appends to the log

	tenantZipf *xrand.Zipf // Tenants: skewed tenant chooser
	tenant     int         // Tenants: tenant of the current burst

	walCursor    uint64 // WAL: next log word (wraps over the log region)
	walRecords   int    // WAL: records appended since the last checkpoint
	fencePending bool   // WAL: emit a sealing fence before anything else

	gcPtr   uint64 // GC: pointer-chase hash cursor
	gcSweep uint64 // GC: forward sweep block cursor

	advNext   uint64 // adversarial: next block/page ordinal
	trainLeft int    // adversarial: zero-gap stores left in the train
}

// ZooProfiles returns the zoo in a stable order: application classes
// first, adversarial generators last. StoresPerKilo is the PPTI target
// each generator is calibrated against (the zoo calibration test pins
// empirical PPTI and NWPE bands).
func ZooProfiles() []Profile {
	return []Profile{
		// Read-mostly KV store: skewed gets over the key population with
		// whole-record puts and occasional tombstone deletes.
		{Name: "kvstore", StoresPerKilo: 40, LoadsPerKilo: 120, Burst: 4, Pattern: KV, WriteWorkingSet: 4096, ZipfSkew: 0.9, ReadWorkingSet: 4096, ReadRecentFrac: 0.3, NonMemCPI: 0.5, DeleteFrac: 0.1},
		// Write-heavy KV store: hotter keys, longer records, few deletes.
		{Name: "kvheavy", StoresPerKilo: 90, LoadsPerKilo: 60, Burst: 6, Pattern: KV, WriteWorkingSet: 1024, ZipfSkew: 1.1, ReadWorkingSet: 1024, ReadRecentFrac: 0.4, NonMemCPI: 0.45, DeleteFrac: 0.05},
		// Write-ahead log: fence-sealed sequential appends, periodic
		// checkpoint rewrites of a skewed home region.
		{Name: "wal", StoresPerKilo: 70, LoadsPerKilo: 50, Burst: 8, Pattern: WAL, WriteWorkingSet: 2048, ZipfSkew: 0.8, ReadWorkingSet: 8192, ReadRecentFrac: 0.3, NonMemCPI: 0.4, CheckpointEvery: 32},
		// Mark/sweep GC: pointer-chasing loads dominate; the sweep is a
		// forward scan of single-word stores, so NWPE pins near 1.
		{Name: "gcmark", StoresPerKilo: 12, LoadsPerKilo: 150, Burst: 1, Pattern: GC, WriteWorkingSet: 8192, ReadWorkingSet: 16384, ReadRecentFrac: 0.05, NonMemCPI: 0.7},
		// Multi-tenant blend: eight zipf tenants over disjoint regions,
		// tenant selection itself skewed.
		{Name: "tenantmix", StoresPerKilo: 35, LoadsPerKilo: 100, Burst: 6, Pattern: Tenants, WriteWorkingSet: 512, ZipfSkew: 0.95, ReadWorkingSet: 1024, ReadRecentFrac: 0.25, NonMemCPI: 0.5, Tenants: 8},
		// Occupancy maximizer: one store per distinct block, zero-gap
		// trains — every persist allocates a fresh SecPB entry and the
		// buffer pins at capacity.
		{Name: "adv-occupancy", StoresPerKilo: 220, LoadsPerKilo: 30, Burst: 1, Pattern: AdvOccupancy, WriteWorkingSet: 4096, ReadWorkingSet: 4096, NonMemCPI: 0.3},
		// BMT blast-radius walker: one store per page, so every persist
		// dirties a distinct counter line and BMT leaf.
		{Name: "adv-bmtblast", StoresPerKilo: 120, LoadsPerKilo: 40, Burst: 1, Pattern: AdvBMTBlast, WriteWorkingSet: 1 << 16, ReadWorkingSet: 8192, NonMemCPI: 0.35},
		// Battery-drain pessimizer: maximum persist rate, page-stride,
		// long zero-gap trains — the worst case a battery must be sized
		// for (harness.StressBattery runs this profile).
		{Name: "adv-battery", StoresPerKilo: 250, LoadsPerKilo: 10, Burst: 1, Pattern: AdvBattery, WriteWorkingSet: 1 << 17, ReadWorkingSet: 4096, NonMemCPI: 0.3},
	}
}

// ZooNames returns the zoo benchmark names in order.
func ZooNames() []string {
	ps := ZooProfiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// initZoo wires the zoo state machine for a zoo-pattern profile.
func (g *Generator) initZoo() {
	g.z = &zooState{}
	switch g.p.Pattern {
	case KV:
		g.zipf = xrand.NewZipf(g.r, g.p.WriteWorkingSet, g.p.ZipfSkew)
	case WAL:
		g.zipf = xrand.NewZipf(g.r, g.p.WriteWorkingSet, g.p.ZipfSkew)
	case Tenants:
		g.zipf = xrand.NewZipf(g.r, g.p.WriteWorkingSet, g.p.ZipfSkew)
		g.z.tenantZipf = xrand.NewZipf(g.r, g.p.Tenants, g.p.ZipfSkew)
	case GC:
		g.z.gcPtr = g.r.Uint64()
	}
}

// zooNext dispatches one op from the pattern's state machine.
func (g *Generator) zooNext() trace.Op {
	switch g.p.Pattern {
	case KV:
		return g.kvNext()
	case WAL:
		return g.walNext()
	case GC:
		return g.gcNext()
	case Tenants:
		return g.tenantsNext()
	default:
		return g.advNext()
	}
}

// storeFrac is the target store fraction of the memory-op stream.
func (g *Generator) storeFrac() float64 {
	return g.p.StoresPerKilo / (g.p.StoresPerKilo + g.p.LoadsPerKilo)
}

// episodeProb returns the probability of starting a write episode when
// none is active, given the episode's mean store count — the same
// renewal argument as burstStartProb.
func (g *Generator) episodeProb(meanStores float64) float64 {
	f := g.storeFrac()
	return f / (meanStores*(1-f) + f)
}

// zooGap draws one instruction gap like gapFor, but round-to-nearest:
// the SPEC proxies' truncating draw under-shoots the mean by half an
// instruction, which is invisible at their rates but pushes the
// high-rate adversarial streams ~15% over their PPTI targets.
func (g *Generator) zooGap() uint32 {
	perKilo := g.p.StoresPerKilo + g.p.LoadsPerKilo
	mean := 1000/perKilo - 1
	if mean < 0 {
		mean = 0
	}
	lo := 0.5 * mean
	return uint32(lo + g.r.Float64()*mean + 0.5)
}

// episodeGap draws the clustered instruction gap for an n-store episode:
// the whole budget lands before the first store and the rest issue
// back-to-back, like the SPEC-proxy burst machinery.
func (g *Generator) episodeGap(n int) uint32 {
	var gap uint32
	for i := 0; i < n; i++ {
		gap += g.zooGap()
	}
	return gap
}

// seqData returns the next monotone store payload. Sequence numbers are
// what real KV/WAL records carry, and they delta-compress to one byte
// per store in SPB2.
func (g *Generator) seqData() uint64 {
	g.z.seq++
	return g.z.seq
}

// noteWritten records a block in the recent ring for load-after-store
// locality.
func (g *Generator) noteWritten(b addr.Block) {
	g.recent[g.recentPos] = b
	g.recentPos = (g.recentPos + 1) % len(g.recent)
}

// kvNext: zipf-keyed puts (whole-record bursts), tombstone deletes, and
// gets against the same key population.
func (g *Generator) kvNext() trace.Op {
	z := g.z
	if z.burstLeft > 0 {
		z.burstLeft--
		op := trace.Op{
			Kind: trace.Store,
			Addr: z.curBlock.Addr() + uint64(z.wordIdx)*8,
			Size: 8,
			Data: g.seqData(),
		}
		z.wordIdx++
		return op
	}
	meanStores := g.p.DeleteFrac + (1-g.p.DeleteFrac)*float64(g.p.Burst)
	if g.r.Bool(g.episodeProb(meanStores)) {
		key := uint64(g.zipf.Next())
		block := addr.BlockOf(persistBase + key*addr.BlockBytes)
		g.noteWritten(block)
		if g.r.Bool(g.p.DeleteFrac) {
			// Tombstone: a single marker word over the record head.
			return trace.Op{
				Kind: trace.Store,
				Addr: block.Addr(),
				Size: 8,
				Data: g.seqData(),
				Gap:  g.episodeGap(1),
			}
		}
		// Put: fill the record from word 0 upward.
		n := 1 + g.r.Intn(2*g.p.Burst-1)
		if n > 8 {
			n = 8 // a record is at most one block here
		}
		z.curBlock, z.wordIdx, z.burstLeft = block, 1, n-1
		return trace.Op{
			Kind: trace.Store,
			Addr: block.Addr(),
			Size: 8,
			Data: g.seqData(),
			Gap:  g.episodeGap(n),
		}
	}
	// Get: a recently written record or a zipf key.
	var a uint64
	if g.r.Bool(g.p.ReadRecentFrac) && g.recent[0] != 0 {
		a = g.recent[g.r.Intn(len(g.recent))].Addr()
	} else {
		a = persistBase + uint64(g.zipf.Next())*addr.BlockBytes
	}
	return trace.Op{
		Kind: trace.Load,
		Addr: a + uint64(g.r.Intn(8))*8,
		Size: 8,
		Gap:  g.zooGap(),
	}
}

// walNext: fence-sealed sequential record appends, periodic checkpoint
// rewrites of the zipf home region, reads of the recent tail.
func (g *Generator) walNext() trace.Op {
	z := g.z
	if z.fencePending {
		z.fencePending = false
		return trace.Op{Kind: trace.Fence}
	}
	if z.burstLeft > 0 {
		z.burstLeft--
		if z.burstLeft == 0 {
			z.fencePending = true
		}
		if z.logEpisode {
			return g.walLogStore(0)
		}
		// Checkpoint continues: rewrite another zipf home block.
		home := addr.BlockOf(persistBase + uint64(g.zipf.Next())*addr.BlockBytes)
		g.noteWritten(home)
		return trace.Op{Kind: trace.Store, Addr: home.Addr(), Size: 8, Data: g.seqData()}
	}
	// The fence after each episode costs one instruction; fold it into
	// the episode mean so the persist rate stays on target.
	if g.r.Bool(g.episodeProb(float64(g.p.Burst))) {
		n := 1 + g.r.Intn(2*g.p.Burst-1)
		z.burstLeft = n - 1
		if z.burstLeft == 0 {
			z.fencePending = true
		}
		if z.walRecords >= g.p.CheckpointEvery {
			// Checkpoint: rewrite n zipf home blocks, then fence.
			z.walRecords = 0
			z.logEpisode = false
			home := addr.BlockOf(persistBase + uint64(g.zipf.Next())*addr.BlockBytes)
			g.noteWritten(home)
			return trace.Op{Kind: trace.Store, Addr: home.Addr(), Size: 8,
				Data: g.seqData(), Gap: g.episodeGap(n)}
		}
		// Append one n-word record at the log cursor, then fence.
		z.walRecords++
		z.logEpisode = true
		return g.walLogStore(g.episodeGap(n))
	}
	// Tail read: the just-written log blocks, or the home region.
	var a uint64
	if g.r.Bool(g.p.ReadRecentFrac) && g.recent[0] != 0 {
		a = g.recent[g.r.Intn(len(g.recent))].Addr()
	} else {
		a = readBase + g.r.Uint64n(uint64(g.p.ReadWorkingSet))*addr.BlockBytes
	}
	return trace.Op{
		Kind: trace.Load,
		Addr: a + uint64(g.r.Intn(8))*8,
		Size: 8,
		Gap:  g.zooGap(),
	}
}

// walLogStore appends one word at the log cursor, wrapping over the
// log region (WriteWorkingSet blocks above walLogBase).
func (g *Generator) walLogStore(gap uint32) trace.Op {
	z := g.z
	words := uint64(g.p.WriteWorkingSet) * 8
	w := z.walCursor % words
	z.walCursor++
	if w%8 == 0 {
		g.noteWritten(addr.BlockOf(walLogBase + (w/8)*addr.BlockBytes))
	}
	return trace.Op{
		Kind: trace.Store,
		Addr: walLogBase + w*8,
		Size: 8,
		Data: g.seqData(),
		Gap:  gap,
	}
}

// gcNext: pointer-chasing mark loads over the heap, with a forward
// sweep of single-word stores (reuse distance = the whole working set,
// so NWPE pins near 1).
func (g *Generator) gcNext() trace.Op {
	z := g.z
	if g.r.Bool(g.storeFrac()) {
		block := addr.BlockOf(persistBase + (z.gcSweep%uint64(g.p.WriteWorkingSet))*addr.BlockBytes)
		z.gcSweep++
		return trace.Op{
			Kind: trace.Store,
			Addr: block.Addr(),
			Size: 8,
			Data: g.seqData(),
			Gap:  g.zooGap(),
		}
	}
	// Chase: the next object's address is a hash of the current one —
	// deterministic, unpredictable, zero spatial locality.
	z.gcPtr ^= z.gcPtr << 13
	z.gcPtr ^= z.gcPtr >> 7
	z.gcPtr ^= z.gcPtr << 17
	idx := z.gcPtr % uint64(g.p.ReadWorkingSet)
	return trace.Op{
		Kind: trace.Load,
		Addr: readBase + idx*addr.BlockBytes + (z.gcPtr>>32%8)*8,
		Size: 8,
		Gap:  g.zooGap(),
	}
}

// tenantsNext: pick a zipf tenant, then a zipf block inside the
// tenant's disjoint region; bursts and loads follow the SPEC-proxy
// shape within that region.
func (g *Generator) tenantsNext() trace.Op {
	z := g.z
	if z.burstLeft > 0 {
		z.burstLeft--
		op := trace.Op{
			Kind: trace.Store,
			Addr: z.curBlock.Addr() + uint64(z.wordIdx%8)*8,
			Size: 8,
			Data: g.seqData(),
		}
		z.wordIdx++
		return op
	}
	if g.r.Bool(g.episodeProb(float64(g.p.Burst))) {
		z.tenant = z.tenantZipf.Next()
		idx := uint64(z.tenant)*uint64(g.p.WriteWorkingSet) + uint64(g.zipf.Next())
		block := addr.BlockOf(persistBase + idx*addr.BlockBytes)
		g.noteWritten(block)
		n := 1 + g.r.Intn(2*g.p.Burst-1)
		z.curBlock, z.burstLeft = block, n-1
		z.wordIdx = 1
		return trace.Op{
			Kind: trace.Store,
			Addr: block.Addr(),
			Size: 8,
			Data: g.seqData(),
			Gap:  g.episodeGap(n),
		}
	}
	var a uint64
	if g.r.Bool(g.p.ReadRecentFrac) && g.recent[0] != 0 {
		a = g.recent[g.r.Intn(len(g.recent))].Addr()
	} else {
		// Reads stay tenant-partitioned too.
		t := uint64(z.tenantZipf.Next())
		a = readBase + (t*uint64(g.p.ReadWorkingSet)+
			g.r.Uint64n(uint64(g.p.ReadWorkingSet)))*addr.BlockBytes
	}
	return trace.Op{
		Kind: trace.Load,
		Addr: a + uint64(g.r.Intn(8))*8,
		Size: 8,
		Gap:  g.zooGap(),
	}
}

// advTrainLen is the zero-gap train length for the adversarial
// patterns: occupancy and battery trains are long enough to fill any
// plausible SecPB before the instruction-gap budget arrives.
func (g *Generator) advTrainLen() int {
	switch g.p.Pattern {
	case AdvBattery:
		return 32
	case AdvOccupancy:
		return 16
	default:
		return 1 // blast walker paces stores normally
	}
}

// advNext drives the three adversarial patterns: single stores that
// never coalesce (a fresh block — or page — per persist), issued in
// zero-gap trains whose whole instruction budget arrives up front.
func (g *Generator) advNext() trace.Op {
	z := g.z
	// A train in progress keeps priority (no coin): the renewal
	// probability below already accounts for the train's store count.
	if z.trainLeft > 0 || g.r.Bool(g.episodeProb(float64(g.advTrainLen()))) {
		var stride uint64 = 1
		if g.p.Pattern != AdvOccupancy {
			stride = addr.BlocksPerPage // one store per page
		}
		idx := (z.advNext * stride) % uint64(g.p.WriteWorkingSet)
		z.advNext++
		var gap uint32
		if z.trainLeft > 0 {
			z.trainLeft--
		} else {
			n := g.advTrainLen()
			z.trainLeft = n - 1
			gap = g.episodeGap(n)
		}
		return trace.Op{
			Kind: trace.Store,
			Addr: persistBase + idx*addr.BlockBytes,
			Size: 8,
			Data: g.seqData(),
			Gap:  gap,
		}
	}
	idx := g.r.Uint64n(uint64(g.p.ReadWorkingSet))
	return trace.Op{
		Kind: trace.Load,
		Addr: readBase + idx*addr.BlockBytes,
		Size: 8,
		Gap:  g.zooGap(),
	}
}
