// Package workload synthesizes memory-operation streams that stand in
// for the paper's 18 SPEC CPU2006 benchmarks (SPEC is proprietary and
// gem5 checkpoints are unavailable).
//
// The evaluation in the paper is driven by a small set of workload
// statistics it reports directly — persists per kilo-instruction (PPTI),
// writes per SecPB entry (NWPE, i.e. store coalescing), and the size of
// the write working set relative to SecPB capacity. Each profile here is
// parameterized to land on the paper's quoted values where given (gamess
// PPTI 47.4 / NWPE 2.1; povray PPTI 38.8 / NWPE 17.6) and on qualitative
// descriptions otherwise (bwaves is a streaming writer whose coalescing
// is capacity-insensitive; gobmk has a large reuse set that benefits
// from larger SecPBs).
package workload

import "fmt"

// Pattern selects the block-reuse structure of the store stream.
type Pattern int

const (
	// Stream writes march through new blocks and rarely return: NWPE is
	// set by within-block burst length only and is insensitive to SecPB
	// capacity.
	Stream Pattern = iota
	// Hot writes revisit a skewed (Zipf) working set: blocks are
	// rewritten while resident, so NWPE grows when the SecPB can hold
	// the hot set.
	Hot
	// Scan writes cycle through a working set in order; reuse distance
	// equals the working-set size, making coalescing a step function of
	// SecPB capacity.
	Scan

	// The zoo patterns below (see zoo.go) model application classes
	// rather than SPEC proxies; each has its own state machine in the
	// generator.

	// KV is a key-value store: zipf-skewed puts (whole-record bursts),
	// gets against the same key population, and tombstone deletes.
	KV
	// WAL is a write-ahead log: sequential record appends each sealed by
	// a fence, with periodic checkpoints rewriting skewed home blocks.
	WAL
	// GC is a mark/sweep collector: pointer-chasing loads over a heap
	// with a forward-scanning sweep of single-word stores (NWPE ≈ 1).
	GC
	// Tenants blends several zipf tenants over disjoint persistent
	// regions, with tenant selection itself zipf-skewed.
	Tenants
	// AdvOccupancy is adversarial: every store dirties a distinct block
	// in zero-gap trains, maximizing live SecPB entries (Yao &
	// Venkataramani's persistence-based occupancy attacks).
	AdvOccupancy
	// AdvBMTBlast is adversarial: stores stride one block per page so
	// each persist lands on a different counter line and BMT leaf,
	// maximizing integrity-tree blast radius.
	AdvBMTBlast
	// AdvBattery is adversarial: maximum-rate zero-gap store trains over
	// distinct pages — the battery-sizing pessimizer behind
	// harness.StressBattery.
	AdvBattery
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case Hot:
		return "hot"
	case Scan:
		return "scan"
	case KV:
		return "kv"
	case WAL:
		return "wal"
	case GC:
		return "gc"
	case Tenants:
		return "tenants"
	case AdvOccupancy:
		return "adv-occupancy"
	case AdvBMTBlast:
		return "adv-bmtblast"
	case AdvBattery:
		return "adv-battery"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// zoo reports whether the pattern runs on the zoo state machines in
// zoo.go rather than the SPEC-proxy burst machinery.
func (p Pattern) zoo() bool { return p >= KV }

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string
	// StoresPerKilo is the target persist rate (the paper's PPTI).
	StoresPerKilo float64
	// LoadsPerKilo is the data-read rate.
	LoadsPerKilo float64
	// Burst is the mean number of consecutive stores to the same 64B
	// block (within-block spatial locality). Higher burst ⇒ higher NWPE.
	Burst int
	// Pattern is the block-reuse structure.
	Pattern Pattern
	// WriteWorkingSet is the number of distinct persistent blocks the
	// store stream cycles over.
	WriteWorkingSet int
	// ZipfSkew shapes Hot-pattern reuse (ignored otherwise).
	ZipfSkew float64
	// ReadWorkingSet is the number of distinct blocks the load stream
	// touches (drives cache miss rates).
	ReadWorkingSet int
	// ReadRecentFrac is the fraction of loads directed at recently
	// written blocks (load-after-store locality).
	ReadRecentFrac float64
	// NonMemCPI is the cycles the core spends per non-memory
	// instruction: it encodes each benchmark's baseline ILP (the paper's
	// per-benchmark baseline IPC heterogeneity; e.g. gamess runs at
	// baseline IPC ≈ 2 while pointer-chasing codes run much lower).
	NonMemCPI float64

	// DeleteFrac is the fraction of KV write operations that are
	// tombstone deletes rather than whole-record puts (KV pattern only).
	DeleteFrac float64
	// CheckpointEvery is the number of WAL records between checkpoint
	// rewrites of the home region (WAL pattern only).
	CheckpointEvery int
	// Tenants is the number of tenants blended by the Tenants pattern,
	// each owning a disjoint WriteWorkingSet-block persistent region.
	Tenants int
}

// Validate reports the first invalid field.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has empty name")
	}
	if p.StoresPerKilo <= 0 || p.StoresPerKilo > 500 {
		return fmt.Errorf("workload: %s: StoresPerKilo %v out of (0,500]", p.Name, p.StoresPerKilo)
	}
	if p.LoadsPerKilo < 0 || p.LoadsPerKilo > 500 {
		return fmt.Errorf("workload: %s: LoadsPerKilo %v out of [0,500]", p.Name, p.LoadsPerKilo)
	}
	if p.StoresPerKilo+p.LoadsPerKilo >= 1000 {
		return fmt.Errorf("workload: %s: memory ops exceed instruction budget", p.Name)
	}
	if p.Burst <= 0 || p.Burst > 64 {
		return fmt.Errorf("workload: %s: Burst %d out of [1,64]", p.Name, p.Burst)
	}
	if p.WriteWorkingSet <= 0 || p.ReadWorkingSet <= 0 {
		return fmt.Errorf("workload: %s: working sets must be positive", p.Name)
	}
	switch p.Pattern {
	case Hot, KV, Tenants:
		if p.ZipfSkew <= 0 {
			return fmt.Errorf("workload: %s: %v pattern requires ZipfSkew > 0", p.Name, p.Pattern)
		}
	}
	if p.DeleteFrac < 0 || p.DeleteFrac > 1 {
		return fmt.Errorf("workload: %s: DeleteFrac %v out of [0,1]", p.Name, p.DeleteFrac)
	}
	if p.Pattern == WAL && p.CheckpointEvery <= 0 {
		return fmt.Errorf("workload: %s: WAL pattern requires CheckpointEvery > 0", p.Name)
	}
	if p.Pattern == Tenants && p.Tenants < 2 {
		return fmt.Errorf("workload: %s: Tenants pattern requires >= 2 tenants", p.Name)
	}
	if p.ReadRecentFrac < 0 || p.ReadRecentFrac > 1 {
		return fmt.Errorf("workload: %s: ReadRecentFrac %v out of [0,1]", p.Name, p.ReadRecentFrac)
	}
	if p.NonMemCPI <= 0 || p.NonMemCPI > 4 {
		return fmt.Errorf("workload: %s: NonMemCPI %v out of (0,4]", p.Name, p.NonMemCPI)
	}
	return nil
}

// Profiles returns the 18 benchmark profiles in a stable order.
//
// Store-rate and locality calibration notes:
//   - gamess: the paper quotes PPTI 47.4, NWPE 2.1, and "write frequency
//     and low spatial locality" — short bursts over a streaming footprint.
//   - povray: PPTI 38.8, NWPE 17.6 — long bursts over a small hot set.
//   - bwaves: "does not observe a reduction in BMT root updates as the
//     capacity increased" — pure streaming writer.
//   - gobmk: "observes continued reduction of performance overheads as
//     the SecPB capacity ... increases" — scan/hot set larger than the
//     default 32-entry SecPB.
//
// The rest are spread over plausible SPEC-like intensities so averages
// are taken over a realistic mix.
func Profiles() []Profile {
	return []Profile{
		{Name: "perlbench", StoresPerKilo: 28, LoadsPerKilo: 90, Burst: 8, Pattern: Hot, WriteWorkingSet: 512, ZipfSkew: 0.9, ReadWorkingSet: 16384, ReadRecentFrac: 0.3, NonMemCPI: 0.5},
		{Name: "bzip2", StoresPerKilo: 22, LoadsPerKilo: 80, Burst: 6, Pattern: Scan, WriteWorkingSet: 1024, ReadWorkingSet: 32768, ReadRecentFrac: 0.2, NonMemCPI: 0.55},
		{Name: "gcc", StoresPerKilo: 33, LoadsPerKilo: 100, Burst: 10, Pattern: Hot, WriteWorkingSet: 2048, ZipfSkew: 0.8, ReadWorkingSet: 16384, ReadRecentFrac: 0.25, NonMemCPI: 0.5},
		{Name: "bwaves", StoresPerKilo: 30, LoadsPerKilo: 110, Burst: 6, Pattern: Stream, WriteWorkingSet: 1 << 17, ReadWorkingSet: 1 << 15, ReadRecentFrac: 0.1, NonMemCPI: 0.45},
		{Name: "gamess", StoresPerKilo: 47.4, LoadsPerKilo: 70, Burst: 2, Pattern: Stream, WriteWorkingSet: 1 << 16, ReadWorkingSet: 8192, ReadRecentFrac: 0.4, NonMemCPI: 0.3},
		{Name: "mcf", StoresPerKilo: 12, LoadsPerKilo: 140, Burst: 2, Pattern: Hot, WriteWorkingSet: 1 << 15, ZipfSkew: 0.6, ReadWorkingSet: 1 << 16, ReadRecentFrac: 0.05, NonMemCPI: 0.7},
		{Name: "milc", StoresPerKilo: 18, LoadsPerKilo: 120, Burst: 8, Pattern: Stream, WriteWorkingSet: 1 << 16, ReadWorkingSet: 1 << 15, ReadRecentFrac: 0.1, NonMemCPI: 0.5},
		{Name: "zeusmp", StoresPerKilo: 25, LoadsPerKilo: 95, Burst: 10, Pattern: Scan, WriteWorkingSet: 4096, ReadWorkingSet: 1 << 14, ReadRecentFrac: 0.15, NonMemCPI: 0.5},
		{Name: "gromacs", StoresPerKilo: 20, LoadsPerKilo: 85, Burst: 10, Pattern: Hot, WriteWorkingSet: 256, ZipfSkew: 1.0, ReadWorkingSet: 8192, ReadRecentFrac: 0.35, NonMemCPI: 0.45},
		{Name: "leslie3d", StoresPerKilo: 27, LoadsPerKilo: 105, Burst: 10, Pattern: Stream, WriteWorkingSet: 1 << 16, ReadWorkingSet: 1 << 15, ReadRecentFrac: 0.1, NonMemCPI: 0.45},
		{Name: "namd", StoresPerKilo: 10, LoadsPerKilo: 75, Burst: 8, Pattern: Hot, WriteWorkingSet: 384, ZipfSkew: 0.9, ReadWorkingSet: 4096, ReadRecentFrac: 0.3, NonMemCPI: 0.4},
		{Name: "gobmk", StoresPerKilo: 35, LoadsPerKilo: 88, Burst: 3, Pattern: Hot, WriteWorkingSet: 1536, ZipfSkew: 0.85, ReadWorkingSet: 16384, ReadRecentFrac: 0.3, NonMemCPI: 0.6},
		{Name: "povray", StoresPerKilo: 38.8, LoadsPerKilo: 78, Burst: 8, Pattern: Hot, WriteWorkingSet: 96, ZipfSkew: 1.1, ReadWorkingSet: 2048, ReadRecentFrac: 0.45, NonMemCPI: 0.4},
		{Name: "hmmer", StoresPerKilo: 16, LoadsPerKilo: 95, Burst: 10, Pattern: Scan, WriteWorkingSet: 128, ReadWorkingSet: 4096, ReadRecentFrac: 0.3, NonMemCPI: 0.45},
		{Name: "sjeng", StoresPerKilo: 14, LoadsPerKilo: 82, Burst: 5, Pattern: Hot, WriteWorkingSet: 1024, ZipfSkew: 0.7, ReadWorkingSet: 16384, ReadRecentFrac: 0.2, NonMemCPI: 0.55},
		{Name: "libquantum", StoresPerKilo: 24, LoadsPerKilo: 115, Burst: 10, Pattern: Scan, WriteWorkingSet: 1 << 15, ReadWorkingSet: 1 << 14, ReadRecentFrac: 0.05, NonMemCPI: 0.45},
		{Name: "h264ref", StoresPerKilo: 30, LoadsPerKilo: 92, Burst: 12, Pattern: Hot, WriteWorkingSet: 640, ZipfSkew: 0.9, ReadWorkingSet: 8192, ReadRecentFrac: 0.3, NonMemCPI: 0.45},
		{Name: "astar", StoresPerKilo: 26, LoadsPerKilo: 98, Burst: 8, Pattern: Hot, WriteWorkingSet: 768, ZipfSkew: 0.95, ReadWorkingSet: 1 << 14, ReadRecentFrac: 0.25, NonMemCPI: 0.55},
	}
}

// ByName returns the profile with the given name, searching the SPEC
// proxies first and then the zoo.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range ZooProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
