package coherence

import (
	"math/bits"

	"secpb/internal/addr"
	"secpb/internal/ptable"
)

// LineState is a block's MESI state in the shared-region directory. The
// states are interpreted against the SecPB protocol of Section IV.C:
//
//   - Modified: the line is resident (dirty, not yet persisted) in the
//     owner core's SecPB — the only state with a persist-buffer entry.
//   - Exclusive: one core has the line, clean in PM (granted on a read
//     miss with no other holder; a later write upgrades silently).
//   - Shared: the line is persisted in PM and readable by every sharer
//     (a remote read of a Modified line flushes the owner's entry and
//     lands here — "the entry leaves the persist-buffer domain").
//   - Invalid: untracked (never accessed, or invalidated by a write).
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String returns the state's MESI letter.
func (s LineState) String() string {
	switch s {
	case Modified:
		return "M"
	case Exclusive:
		return "E"
	case Shared:
		return "S"
	default:
		return "I"
	}
}

// Line is one directory entry. Sharers is a 64-bit presence mask; cores
// beyond 64 fold onto it modulo 64, which can only under-count
// invalidations (a stats/timing approximation — functional correctness
// never depends on the sharer set, since a line leaves the
// persist-buffer domain the moment it is flushed to PM).
type Line struct {
	State   LineState
	Owner   int16 // meaningful in Modified/Exclusive
	Sharers uint64
}

// MESIStats counts directory transitions.
type MESIStats struct {
	Reads         uint64 `json:"reads"`
	Writes        uint64 `json:"writes"`
	Hits          uint64 `json:"hits"`           // requester already held the line (M/E)
	Migrations    uint64 `json:"migrations"`     // M(other) write: SecPB entry migrated
	ReadFlushes   uint64 `json:"read_flushes"`   // M(other) read: owner entry flushed to PM
	Invalidations uint64 `json:"invalidations"`  // sharer/exclusive copies killed by writes
	Upgrades      uint64 `json:"upgrades"`       // S→M by a sharer, or silent E→M
	ColdMisses    uint64 `json:"cold_misses"`    // I→E / I→M allocations
	DrainDemotes  uint64 `json:"drain_demotes"`  // M→S because the owner's entry drained
	ImmediateRead uint64 `json:"immediate_read"` // non-M reads served without deferral
}

// Action is what a directory transition requires of the protocol layer.
type Action struct {
	Prev, Next LineState
	// FlushFrom >= 0 asks the caller to flush that core's SecPB entry to
	// PM (remote read of a Modified line).
	FlushFrom int
	// MigrateFrom >= 0 asks the caller to migrate that core's SecPB
	// entry to the requester (remote write of a Modified line).
	MigrateFrom int
	// Invalidations is how many remote copies this write killed.
	Invalidations int
	// Hit reports the requester already held the line.
	Hit bool
}

// Directory is the shared-region MESI directory. Lookups are striped
// (ptable.Sharded) so concurrently stepping cores may Peek during the
// parallel phase of an epoch; state transitions happen only at
// serialized drain-epoch barriers.
type Directory struct {
	lines *ptable.Sharded[Line]
	stats MESIStats
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lines: ptable.NewSharded[Line]()}
}

// Stats returns the transition counters.
func (d *Directory) Stats() MESIStats { return d.stats }

func sharerBit(core int) uint64 { return 1 << (uint(core) % 64) }

// Peek returns the line's current state and owner without recording an
// access. Safe to call concurrently with other Peeks (the parallel
// phase consults a frozen directory; mutations are barrier-only).
func (d *Directory) Peek(b addr.Block) (LineState, int) {
	l, ok := d.lines.Lookup(b.Index())
	if !ok {
		return Invalid, -1
	}
	return l.State, int(l.Owner)
}

// NoteImmediateRead counts a parallel-phase read of a non-Modified line
// served directly from the coherent view. Call only from serialized
// sections (barriers); cores accumulate privately during an epoch.
func (d *Directory) NoteImmediateRead(n uint64) { d.stats.ImmediateRead += n }

// Read records core's read of block b and returns the required action.
// Barrier-only (serialized).
func (d *Directory) Read(core int, b addr.Block) Action {
	d.stats.Reads++
	act := Action{FlushFrom: -1, MigrateFrom: -1}
	d.lines.Update(b.Index(), func(l *Line) {
		act.Prev = l.State
		switch l.State {
		case Invalid:
			l.State, l.Owner, l.Sharers = Exclusive, int16(core), sharerBit(core)
			d.stats.ColdMisses++
		case Exclusive:
			if int(l.Owner) == core {
				act.Hit = true
				d.stats.Hits++
				break
			}
			l.State = Shared
			l.Sharers |= sharerBit(core)
		case Shared:
			l.Sharers |= sharerBit(core)
		case Modified:
			if int(l.Owner) == core {
				act.Hit = true
				d.stats.Hits++
				break
			}
			// Remote read: the owner's entry is flushed to PM in
			// parallel with the data forward; the line becomes Shared.
			act.FlushFrom = int(l.Owner)
			d.stats.ReadFlushes++
			l.State = Shared
			l.Sharers |= sharerBit(core)
		}
		act.Next = l.State
	})
	return act
}

// Write records core's write of block b and returns the required
// action. Barrier-only (serialized).
func (d *Directory) Write(core int, b addr.Block) Action {
	d.stats.Writes++
	act := Action{FlushFrom: -1, MigrateFrom: -1}
	d.lines.Update(b.Index(), func(l *Line) {
		act.Prev = l.State
		switch l.State {
		case Invalid:
			d.stats.ColdMisses++
		case Exclusive:
			if int(l.Owner) == core {
				d.stats.Upgrades++ // silent E→M
			} else {
				act.Invalidations = 1
				d.stats.Invalidations++
			}
		case Shared:
			others := bits.OnesCount64(l.Sharers &^ sharerBit(core))
			act.Invalidations = others
			d.stats.Invalidations += uint64(others)
			if l.Sharers&sharerBit(core) != 0 {
				d.stats.Upgrades++
			}
		case Modified:
			if int(l.Owner) == core {
				act.Hit = true
				d.stats.Hits++
			} else {
				// Remote write: migrate the entry with its
				// data-value-independent metadata (Section IV.C).
				act.MigrateFrom = int(l.Owner)
				d.stats.Migrations++
			}
		}
		l.State, l.Owner, l.Sharers = Modified, int16(core), sharerBit(core)
		act.Next = Modified
	})
	return act
}

// DrainDemote records that the owner's SecPB entry for b drained to PM
// (watermark or capacity eviction): the line leaves the persist-buffer
// domain and becomes Shared in PM.
func (d *Directory) DrainDemote(b addr.Block) {
	d.lines.Update(b.Index(), func(l *Line) {
		if l.State == Modified {
			l.State = Shared
			d.stats.DrainDemotes++
		}
	})
}

// DemoteAll demotes every Modified line to Shared — the directory image
// after a crash drain persisted every SecPB entry.
func (d *Directory) DemoteAll() {
	for _, k := range d.lines.Keys() {
		d.lines.Update(k, func(l *Line) {
			if l.State == Modified {
				l.State = Shared
			}
		})
	}
}

// Modified returns the blocks currently in Modified state with their
// owners, in ascending block order (deterministic).
func (d *Directory) Modified() []ModifiedLine {
	var out []ModifiedLine
	d.lines.Range(func(idx uint64, l Line) bool {
		if l.State == Modified {
			out = append(out, ModifiedLine{Block: addr.FromIndex(idx), Owner: int(l.Owner)})
		}
		return true
	})
	return out
}

// ModifiedLine is one Modified directory line.
type ModifiedLine struct {
	Block addr.Block
	Owner int
}
