package coherence

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/xrand"
)

func newSystem(t *testing.T, scheme config.Scheme, cores int) *System {
	t.Helper()
	s, err := New(config.Default().WithScheme(scheme), cores, []byte("coh"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(config.Default(), 0, nil); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(config.Default().WithScheme(config.SchemeSP), 2, nil); err == nil {
		t.Error("SP baseline accepted")
	}
}

func TestRemoteWriteMigratesEntry(t *testing.T) {
	s := newSystem(t, config.SchemeCM, 2)
	a := uint64(0x10000000)
	if err := s.Store(0, a, 8, 0x11); err != nil {
		t.Fatal(err)
	}
	if s.SecPB(0).Lookup(addr.BlockOf(a)) == nil {
		t.Fatal("core 0 does not hold the block after its store")
	}
	ctrBefore := s.SecPB(0).Lookup(addr.BlockOf(a)).Ext.Counter

	// Core 1 writes the same block: the entry must migrate, not copy.
	if err := s.Store(1, a+8, 8, 0x22); err != nil {
		t.Fatal(err)
	}
	if s.SecPB(0).Lookup(addr.BlockOf(a)) != nil {
		t.Error("block replicated: still in core 0's SecPB")
	}
	e := s.SecPB(1).Lookup(addr.BlockOf(a))
	if e == nil {
		t.Fatal("block not in core 1's SecPB after migration")
	}
	// Data-value-independent metadata travelled with the entry.
	if !e.Ext.CounterValid || e.Ext.Counter != ctrBefore {
		t.Error("counter did not travel with the migrated entry")
	}
	if !e.Ext.BMTDone {
		t.Error("BMT-done bit did not travel (CM pays the walk once)")
	}
	// Both cores' writes are merged in the coalesced data.
	if e.Data[0] != 0x11 || e.Data[8] != 0x22 {
		t.Errorf("merged data wrong: % x", e.Data[:16])
	}
	migs, _ := s.Stats()
	if migs != 1 {
		t.Errorf("migrations = %d", migs)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoteReadFlushesToPM(t *testing.T) {
	s := newSystem(t, config.SchemeCOBCM, 2)
	a := uint64(0x20000000)
	if err := s.Store(0, a, 8, 0xAB); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load(1, a)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0xAB {
		t.Errorf("remote read value = %#x", v[0])
	}
	// The owner's entry left the SecPB and persisted.
	if s.SecPB(0).Lookup(addr.BlockOf(a)) != nil {
		t.Error("entry still in owner's SecPB after remote read")
	}
	got, _, err := s.Controller().FetchBlock(addr.BlockOf(a))
	if err != nil {
		t.Fatalf("flushed block fails verification: %v", err)
	}
	if got[0] != 0xAB {
		t.Error("flushed block has wrong plaintext in PM")
	}
	_, flushes := s.Stats()
	if flushes != 1 {
		t.Errorf("read flushes = %d", flushes)
	}
}

func TestLocalOpsNeedNoCoherence(t *testing.T) {
	s := newSystem(t, config.SchemeCOBCM, 2)
	a := uint64(0x30000000)
	if err := s.Store(0, a, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(0, a); err != nil {
		t.Fatal(err)
	}
	migs, flushes := s.Stats()
	if migs != 0 || flushes != 0 {
		t.Errorf("local ops triggered coherence: %d/%d", migs, flushes)
	}
}

func TestLoadNeverWrittenBlock(t *testing.T) {
	s := newSystem(t, config.SchemeCOBCM, 2)
	v, err := s.Load(1, 0x70000000)
	if err != nil {
		t.Fatal(err)
	}
	if v != ([addr.BlockBytes]byte{}) {
		t.Error("fresh block not zero")
	}
}

func TestNoReplicationUnderRandomSharing(t *testing.T) {
	// Property: under a random mix of stores and loads from 4 cores
	// over a small shared block set, no block is ever in two SecPBs and
	// the directory always matches residency.
	for _, scheme := range []config.Scheme{config.SchemeCOBCM, config.SchemeNoGap} {
		s := newSystem(t, scheme, 4)
		r := xrand.New(99)
		const blocks = 24
		for i := 0; i < 4000; i++ {
			corei := r.Intn(4)
			a := uint64(0x10000000) + uint64(r.Intn(blocks))*addr.BlockBytes + uint64(r.Intn(8))*8
			if r.Bool(0.6) {
				if err := s.Store(corei, a, 8, r.Uint64()); err != nil {
					t.Fatalf("%v step %d: %v", scheme, i, err)
				}
			} else {
				if _, err := s.Load(corei, a); err != nil {
					t.Fatalf("%v step %d: %v", scheme, i, err)
				}
			}
			if i%250 == 0 {
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("%v step %d: %v", scheme, i, err)
				}
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		migs, _ := s.Stats()
		if migs == 0 {
			t.Errorf("%v: random sharing produced no migrations", scheme)
		}
	}
}

func TestLoadsSeeLatestStoreAcrossCores(t *testing.T) {
	s := newSystem(t, config.SchemeCM, 3)
	a := uint64(0x40000000)
	for i := uint64(0); i < 30; i++ {
		writer := int(i % 3)
		if err := s.Store(writer, a, 8, i); err != nil {
			t.Fatal(err)
		}
		reader := int((i + 1) % 3)
		v, err := s.Load(reader, a)
		if err != nil {
			t.Fatal(err)
		}
		got := uint64(v[0]) | uint64(v[1])<<8 | uint64(v[2])<<16 | uint64(v[3])<<24
		if got != i&0xFFFFFFFF {
			t.Fatalf("iteration %d: read %d", i, got)
		}
	}
}

func TestMultiCoreCrashRecovery(t *testing.T) {
	// The battery backs every core's SecPB: after a crash all entries
	// drain and the shared PM image recovers the coherent view exactly.
	for _, scheme := range []config.Scheme{config.SchemeCOBCM, config.SchemeM} {
		s := newSystem(t, scheme, 4)
		r := xrand.New(7)
		for i := 0; i < 3000; i++ {
			corei := r.Intn(4)
			a := uint64(0x10000000) + uint64(r.Intn(200))*addr.BlockBytes + uint64(r.Intn(8))*8
			if err := s.Store(corei, a, 8, r.Uint64()); err != nil {
				t.Fatal(err)
			}
		}
		n, err := s.CrashDrainAll()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if n == 0 {
			t.Fatalf("%v: nothing drained", scheme)
		}
		if err := s.VerifyRecovery(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestMigrationUnderFullBuffer(t *testing.T) {
	// Migrating into a full SecPB must drain room, not fail or
	// replicate.
	cfg := config.Default().WithScheme(config.SchemeCOBCM).WithSecPBEntries(4)
	s, err := New(cfg, 2, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	// Fill core 1's buffer.
	for i := uint64(0); i < 4; i++ {
		if err := s.Store(1, 0x50000000+i*addr.BlockBytes, 8, i); err != nil {
			t.Fatal(err)
		}
	}
	// Core 0 owns a block; core 1 then writes it -> migration into a
	// full buffer.
	if err := s.Store(0, 0x60000000, 8, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(1, 0x60000000, 8, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.SecPB(1).Lookup(addr.BlockOf(0x60000000)); got == nil {
		t.Error("migration into full buffer failed")
	}
}

func TestBadCoreIDs(t *testing.T) {
	s := newSystem(t, config.SchemeCOBCM, 2)
	if err := s.Store(5, 0x1000, 8, 1); err == nil {
		t.Error("out-of-range core accepted for store")
	}
	if _, err := s.Load(-1, 0x1000); err == nil {
		t.Error("negative core accepted for load")
	}
}
