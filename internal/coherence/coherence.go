// Package coherence implements the multi-core SecPB protocol of Section
// IV.C: each core owns a private SecPB, a MESI directory tracks every
// shared-region line (with Modified meaning "resident in exactly one
// SecPB"), and the two coherence situations the paper identifies are
// handled without ever replicating a block or its metadata across
// SecPBs:
//
//   - A remote READ flushes the owner's entry to PM (persisting data and
//     metadata) while the data is forwarded to the reader — the entry
//     leaves the persist-buffer domain and the line becomes Shared.
//   - A remote WRITE migrates the entry to the requesting core's SecPB.
//     The data-value-independent metadata (counter, OTP, BMT-done)
//     travels with it, so the requester regenerates only the ciphertext
//     and MAC its scheme computes eagerly.
//
// The protocol is the main simulation path for engine.System's shared
// coherent region: stores and Modified-line loads replay here at
// drain-epoch barriers in canonical core order, non-Modified loads are
// served in parallel against a frozen directory, and every transition
// returns a first-order timing charge (directory + interconnect +
// buffer port; the private data path keeps the full Figure-4 model).
package coherence

import (
	"errors"
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/crashpoint"
	"secpb/internal/nvm"
	"secpb/internal/pb"
	"secpb/internal/ptable"
)

// First-order timing charges for shared-region protocol actions, in
// core cycles. Directory and interconnect latencies are modelled at LLC
// scale (the directory co-locates with the shared cache), per-sharer
// invalidations at network-message scale.
const (
	DirAccessCyc = 20 // directory lookup/update
	LinkCyc      = 40 // one interconnect hop (data or entry transfer)
	InvalCyc     = 8  // per invalidation message
)

// Cost is the cycle charge and protocol activity of one shared-region
// operation.
type Cost struct {
	Cycles        uint64
	Migrated      bool
	Flushed       bool
	Invalidations int
}

// System is a set of cores sharing one memory-controller view of the
// shared coherent region, with a MESI directory over it.
type System struct {
	cfg   config.Config
	mc    *nvm.Controller
	cores []*core.SecPB
	dir   *Directory

	// view is the coherent program view across all cores (stores are
	// globally visible at the PoV, which coincides with the PoP). It is
	// stripe-locked so concurrently stepping cores may read non-Modified
	// lines during the parallel phase of an epoch.
	view *ptable.Sharded[[addr.BlockBytes]byte]

	migrations  uint64
	readFlushes uint64
}

// New builds a system with n cores.
func New(cfg config.Config, n int, key []byte) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coherence: need at least one core, got %d", n)
	}
	if cfg.Scheme == config.SchemeSP {
		return nil, errors.New("coherence: SP baseline has no persist buffers")
	}
	mc, err := nvm.NewController(cfg, key)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:  cfg,
		mc:   mc,
		dir:  NewDirectory(),
		view: ptable.NewSharded[[addr.BlockBytes]byte](),
	}
	for i := 0; i < n; i++ {
		spb, err := core.New(cfg, mc)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, spb)
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Controller returns the shared memory controller.
func (s *System) Controller() *nvm.Controller { return s.mc }

// SecPB returns core i's persist buffer.
func (s *System) SecPB(i int) *core.SecPB { return s.cores[i] }

// Directory returns the MESI directory.
func (s *System) Directory() *Directory { return s.dir }

// Memory returns the coherent program view as a map snapshot.
func (s *System) Memory() map[addr.Block][addr.BlockBytes]byte {
	out := make(map[addr.Block][addr.BlockBytes]byte, s.view.Len())
	s.view.Range(func(idx uint64, v [addr.BlockBytes]byte) bool {
		out[addr.FromIndex(idx)] = v
		return true
	})
	return out
}

// PeekView returns the coherent view of one block (stripe read lock;
// safe during the parallel phase, whose mutations are barrier-only).
func (s *System) PeekView(b addr.Block) ([addr.BlockBytes]byte, bool) {
	return s.view.Lookup(b.Index())
}

// Stats returns (entry migrations, read-triggered flushes).
func (s *System) Stats() (migrations, readFlushes uint64) {
	return s.migrations, s.readFlushes
}

// SetCrashSink installs (or removes) a crash-injection sink across every
// core's SecPB and the shared controller.
func (s *System) SetCrashSink(sink crashpoint.Sink) {
	for _, c := range s.cores {
		c.SetCrashSink(sink)
	}
	s.mc.SetCrashSink(sink)
}

// checkCore validates a core id.
func (s *System) checkCore(id int) error {
	if id < 0 || id >= len(s.cores) {
		return fmt.Errorf("coherence: core %d out of range [0,%d)", id, len(s.cores))
	}
	return nil
}

// makeRoom drains the oldest entry of core id until an allocation fits;
// each drained line leaves the persist-buffer domain (M→S).
func (s *System) makeRoom(id int) error {
	for s.cores[id].Full() {
		e, _, err := s.cores[id].DrainOne()
		if err != nil {
			return err
		}
		if e == nil {
			return errors.New("coherence: full SecPB with nothing to drain")
		}
		s.dir.DrainDemote(e.Block)
		s.cores[id].Recycle(e)
	}
	return nil
}

// Store performs a write by core id (compatibility wrapper).
func (s *System) Store(id int, byteAddr uint64, size int, val uint64) error {
	_, err := s.StoreEx(id, byteAddr, size, val)
	return err
}

// StoreEx performs a write by core id through the MESI directory — the
// two-situation protocol of Section IV.C plus normal SecPB acceptance —
// and returns its timing charge. Serialized (barrier-only in
// engine.System).
func (s *System) StoreEx(id int, byteAddr uint64, size int, val uint64) (Cost, error) {
	var cc Cost
	if err := s.checkCore(id); err != nil {
		return cc, err
	}
	block := addr.BlockOf(byteAddr)
	off := int(byteAddr - block.Addr())

	act := s.dir.Write(id, block)
	cc.Cycles = DirAccessCyc + uint64(act.Invalidations)*InvalCyc
	cc.Invalidations = act.Invalidations

	if act.MigrateFrom >= 0 {
		// Remote write: migrate the entry, keeping data-value-
		// independent metadata.
		entry := s.cores[act.MigrateFrom].RemoveForMigration(block)
		if entry == nil {
			return cc, fmt.Errorf("coherence: directory says core %d owns %#x but entry missing", act.MigrateFrom, block.Addr())
		}
		if err := s.makeRoom(id); err != nil {
			return cc, err
		}
		if err := s.cores[id].AdoptMigrated(entry); err != nil {
			return cc, fmt.Errorf("coherence: adopting migrated entry: %w", err)
		}
		s.migrations++
		cc.Migrated = true
		cc.Cycles += LinkCyc + 2*s.cfg.SecPBAccessCyc
	}

	// Update the coherent view (PoV == PoP under persistent hierarchy).
	var cur [addr.BlockBytes]byte
	s.view.Update(block.Index(), func(p *[addr.BlockBytes]byte) {
		for i := 0; i < size; i++ {
			p[off+i] = byte(val >> (8 * i))
		}
		cur = *p
	})

	if act.MigrateFrom < 0 && !act.Hit {
		if err := s.makeRoom(id); err != nil {
			return cc, err
		}
	}
	var cost core.AcceptCost
	err := s.cores[id].AcceptStoreInit(0, block, off, size, val, &cur, 0, &cost)
	if errors.Is(err, pb.ErrFull) {
		if err := s.makeRoom(id); err != nil {
			return cc, err
		}
		err = s.cores[id].AcceptStoreInit(0, block, off, size, val, &cur, 0, &cost)
	}
	if err != nil {
		return cc, err
	}
	cc.Cycles += s.cfg.SecPBAccessCyc
	return cc, nil
}

// Load performs a read by core id (compatibility wrapper).
func (s *System) Load(id int, byteAddr uint64) ([addr.BlockBytes]byte, error) {
	v, _, err := s.LoadEx(id, byteAddr)
	return v, err
}

// LoadEx performs a read by core id through the directory. If another
// core's SecPB owns the block (Modified), the owner's entry is flushed
// to PM in parallel with forwarding the data and the line becomes
// Shared. Serialized (barrier-only in engine.System).
func (s *System) LoadEx(id int, byteAddr uint64) ([addr.BlockBytes]byte, Cost, error) {
	var cc Cost
	if err := s.checkCore(id); err != nil {
		return [addr.BlockBytes]byte{}, cc, err
	}
	block := addr.BlockOf(byteAddr)
	act := s.dir.Read(id, block)
	cc.Cycles = DirAccessCyc
	if act.FlushFrom >= 0 {
		found, _, err := s.cores[act.FlushFrom].FlushBlock(block)
		if err != nil {
			return [addr.BlockBytes]byte{}, cc, err
		}
		if !found {
			return [addr.BlockBytes]byte{}, cc, fmt.Errorf("coherence: stale directory entry for %#x", block.Addr())
		}
		s.readFlushes++
		cc.Flushed = true
		cc.Cycles += LinkCyc + s.cfg.PMWriteCycles()
	} else if !act.Hit {
		cc.Cycles += LinkCyc
	}
	// Reads are served from the coherent view; if the block is in no
	// SecPB it is (or will be) in PM/caches.
	if v, ok := s.view.Lookup(block.Index()); ok {
		return v, cc, nil
	}
	// Never written: fetch from PM (zeros on fresh media).
	v, _, err := s.mc.FetchBlock(block)
	return v, cc, err
}

// CheckInvariants verifies the protocol's structural invariants: every
// Modified directory line points at a core actually holding the block,
// no block is resident in two SecPBs, and every resident block is a
// Modified line owned by that core.
func (s *System) CheckInvariants() error {
	owned := map[addr.Block]int{}
	for _, m := range s.dir.Modified() {
		if err := s.checkCore(m.Owner); err != nil {
			return err
		}
		if s.cores[m.Owner].Lookup(m.Block) == nil {
			return fmt.Errorf("coherence: directory points core %d at %#x but entry absent", m.Owner, m.Block.Addr())
		}
		owned[m.Block] = m.Owner
	}
	seen := map[addr.Block]int{}
	var blocks []addr.Block
	s.view.Range(func(idx uint64, _ [addr.BlockBytes]byte) bool {
		blocks = append(blocks, addr.FromIndex(idx))
		return true
	})
	for id := range s.cores {
		for _, block := range blocks {
			if s.cores[id].Lookup(block) != nil {
				if prev, dup := seen[block]; dup {
					return fmt.Errorf("coherence: block %#x replicated in SecPBs %d and %d", block.Addr(), prev, id)
				}
				seen[block] = id
				if owner, ok := owned[block]; !ok || owner != id {
					return fmt.Errorf("coherence: block %#x resident in core %d but directory disagrees (owner %d, tracked %v)", block.Addr(), id, owner, ok)
				}
			}
		}
	}
	return nil
}

// CrashDrainAll drains every core's SecPB in ascending core order (the
// canonical cross-core replay order; the battery backs them all) and
// returns the total entries drained. Every Modified line lands in PM.
func (s *System) CrashDrainAll() (int, error) {
	total := 0
	for id, c := range s.cores {
		n, _, err := c.CrashDrain()
		if err != nil {
			return total, fmt.Errorf("coherence: core %d crash drain: %w", id, err)
		}
		total += n
	}
	s.dir.DemoteAll()
	return total, nil
}

// VerifyRecovery fetches every written block from PM after a crash
// drain and compares it with the coherent view.
func (s *System) VerifyRecovery() error {
	var firstErr error
	s.view.Range(func(idx uint64, want [addr.BlockBytes]byte) bool {
		block := addr.FromIndex(idx)
		got, _, err := s.mc.FetchBlock(block)
		if err != nil {
			firstErr = fmt.Errorf("coherence: block %#x: %w", block.Addr(), err)
			return false
		}
		if got != want {
			firstErr = fmt.Errorf("coherence: block %#x: plaintext mismatch after recovery", block.Addr())
			return false
		}
		return true
	})
	return firstErr
}
