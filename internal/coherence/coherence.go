// Package coherence implements the multi-core SecPB protocol of Section
// IV.C: each core owns a private SecPB, a directory tracks which SecPB
// (if any) holds each block, and the two coherence situations the paper
// identifies are handled without ever replicating a block or its
// metadata across SecPBs:
//
//   - A remote READ flushes the owner's entry to PM (persisting data and
//     metadata) while the data is forwarded to the reader — the entry
//     leaves the persist-buffer domain and the line becomes shared.
//   - A remote WRITE migrates the entry to the requesting core's SecPB.
//     The data-value-independent metadata (counter, OTP, BMT-done)
//     travels with it, so the requester regenerates only the ciphertext
//     and MAC its scheme computes eagerly.
//
// The protocol here is functional: it maintains and checks the
// no-replication invariant and produces crash-consistent state for the
// recovery machinery; multi-core timing is out of scope (the paper's
// evaluation is single-core too).
package coherence

import (
	"errors"
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/nvm"
	"secpb/internal/pb"
)

// System is a set of cores sharing one memory controller and PM.
type System struct {
	cfg   config.Config
	mc    *nvm.Controller
	cores []*core.SecPB
	// owner maps a block to the core whose SecPB holds it; absent means
	// no SecPB holds the block.
	owner map[addr.Block]int

	// memory is the coherent program view across all cores (stores are
	// globally visible at the PoV, which coincides with the PoP).
	memory map[addr.Block][addr.BlockBytes]byte

	migrations  uint64
	readFlushes uint64
}

// New builds a system with n cores.
func New(cfg config.Config, n int, key []byte) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coherence: need at least one core, got %d", n)
	}
	if cfg.Scheme == config.SchemeSP {
		return nil, errors.New("coherence: SP baseline has no persist buffers")
	}
	mc, err := nvm.NewController(cfg, key)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		mc:     mc,
		owner:  make(map[addr.Block]int),
		memory: make(map[addr.Block][addr.BlockBytes]byte),
	}
	for i := 0; i < n; i++ {
		spb, err := core.New(cfg, mc)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, spb)
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Controller returns the shared memory controller.
func (s *System) Controller() *nvm.Controller { return s.mc }

// SecPB returns core i's persist buffer.
func (s *System) SecPB(i int) *core.SecPB { return s.cores[i] }

// Memory returns the coherent program view.
func (s *System) Memory() map[addr.Block][addr.BlockBytes]byte { return s.memory }

// Stats returns (entry migrations, read-triggered flushes).
func (s *System) Stats() (migrations, readFlushes uint64) {
	return s.migrations, s.readFlushes
}

// checkCore validates a core id.
func (s *System) checkCore(id int) error {
	if id < 0 || id >= len(s.cores) {
		return fmt.Errorf("coherence: core %d out of range [0,%d)", id, len(s.cores))
	}
	return nil
}

// makeRoom drains the oldest entry of core id until an allocation fits.
func (s *System) makeRoom(id int) error {
	for s.cores[id].Full() {
		e, _, err := s.cores[id].DrainOne()
		if err != nil {
			return err
		}
		if e == nil {
			return errors.New("coherence: full SecPB with nothing to drain")
		}
		delete(s.owner, e.Block)
	}
	return nil
}

// Store performs a write by core id: the two-situation protocol above,
// then normal SecPB acceptance.
func (s *System) Store(id int, byteAddr uint64, size int, val uint64) error {
	if err := s.checkCore(id); err != nil {
		return err
	}
	block := addr.BlockOf(byteAddr)
	off := int(byteAddr - block.Addr())

	if owner, ok := s.owner[block]; ok && owner != id {
		// Remote write: migrate the entry, keeping data-value-
		// independent metadata.
		entry := s.cores[owner].RemoveForMigration(block)
		if entry == nil {
			return fmt.Errorf("coherence: directory says core %d owns %#x but entry missing", owner, block.Addr())
		}
		if err := s.makeRoom(id); err != nil {
			return err
		}
		if err := s.cores[id].AdoptMigrated(entry); err != nil {
			return fmt.Errorf("coherence: adopting migrated entry: %w", err)
		}
		s.owner[block] = id
		s.migrations++
	}

	// Update the coherent view (PoV == PoP under persistent hierarchy).
	cur := s.memory[block]
	for i := 0; i < size; i++ {
		cur[off+i] = byte(val >> (8 * i))
	}
	s.memory[block] = cur

	if _, ok := s.owner[block]; !ok {
		if err := s.makeRoom(id); err != nil {
			return err
		}
	}
	var cost core.AcceptCost
	err := s.cores[id].AcceptStoreInit(0, block, off, size, val, &cur, 0, &cost)
	if errors.Is(err, pb.ErrFull) {
		if err := s.makeRoom(id); err != nil {
			return err
		}
		err = s.cores[id].AcceptStoreInit(0, block, off, size, val, &cur, 0, &cost)
	}
	if err != nil {
		return err
	}
	s.owner[block] = id
	return nil
}

// Load performs a read by core id. If another core's SecPB owns the
// block, the owner's entry is flushed to PM (data and metadata persist)
// in parallel with forwarding the data, and the block leaves the
// persist-buffer domain (shared state).
func (s *System) Load(id int, byteAddr uint64) ([addr.BlockBytes]byte, error) {
	if err := s.checkCore(id); err != nil {
		return [addr.BlockBytes]byte{}, err
	}
	block := addr.BlockOf(byteAddr)
	if owner, ok := s.owner[block]; ok && owner != id {
		found, _, err := s.cores[owner].FlushBlock(block)
		if err != nil {
			return [addr.BlockBytes]byte{}, err
		}
		if !found {
			return [addr.BlockBytes]byte{}, fmt.Errorf("coherence: stale directory entry for %#x", block.Addr())
		}
		delete(s.owner, block)
		s.readFlushes++
	}
	// Reads are served from the coherent view; if the block is in no
	// SecPB it is (or will be) in PM/caches.
	if v, ok := s.memory[block]; ok {
		return v, nil
	}
	// Never written: fetch from PM (zeros on fresh media).
	v, _, err := s.mc.FetchBlock(block)
	return v, err
}

// CheckInvariants verifies the protocol's structural invariants: every
// directory entry points at a core actually holding the block, no block
// is resident in two SecPBs, and every resident block has a directory
// entry.
func (s *System) CheckInvariants() error {
	for block, owner := range s.owner {
		if err := s.checkCore(owner); err != nil {
			return err
		}
		if s.cores[owner].Lookup(block) == nil {
			return fmt.Errorf("coherence: directory points core %d at %#x but entry absent", owner, block.Addr())
		}
	}
	seen := map[addr.Block]int{}
	for id := range s.cores {
		for block := range s.memory {
			if s.cores[id].Lookup(block) != nil {
				if prev, dup := seen[block]; dup {
					return fmt.Errorf("coherence: block %#x replicated in SecPBs %d and %d", block.Addr(), prev, id)
				}
				seen[block] = id
				if s.owner[block] != id {
					return fmt.Errorf("coherence: block %#x resident in core %d but directory says %d", block.Addr(), id, s.owner[block])
				}
			}
		}
	}
	return nil
}

// CrashDrainAll drains every core's SecPB (the battery backs them all)
// and returns the total entries drained.
func (s *System) CrashDrainAll() (int, error) {
	total := 0
	for id, c := range s.cores {
		n, _, err := c.CrashDrain()
		if err != nil {
			return total, fmt.Errorf("coherence: core %d crash drain: %w", id, err)
		}
		total += n
	}
	s.owner = make(map[addr.Block]int)
	return total, nil
}

// VerifyRecovery fetches every written block from PM after a crash
// drain and compares it with the coherent view.
func (s *System) VerifyRecovery() error {
	for block, want := range s.memory {
		got, _, err := s.mc.FetchBlock(block)
		if err != nil {
			return fmt.Errorf("coherence: block %#x: %w", block.Addr(), err)
		}
		if got != want {
			return fmt.Errorf("coherence: block %#x: plaintext mismatch after recovery", block.Addr())
		}
	}
	return nil
}
