package harness

import (
	"strings"
	"testing"
)

// TestStressBatteryReachesProvisionedBound: the pessimizer must drive
// peak occupancy to SecPB capacity under every scheme, making the
// measured worst-case drain demand land exactly on the capacity-sized
// battery — the Table V provisioning is tight, not conservative.
func TestStressBatteryReachesProvisionedBound(t *testing.T) {
	o := DefaultOptions()
	o.Ops = 10_000
	rows, tab, err := StressBattery(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(zooSchemes()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(zooSchemes()))
	}
	for _, r := range rows {
		// The lazy schemes defer the most drain work, so they are the
		// battery-sizing worst case — and exactly where the adversary
		// can pin the buffer completely full. Eager schemes throttle
		// allocation upstream (early crypto work stalls stores first),
		// so their peak stays slightly below capacity.
		lazy := r.Scheme.String() == "cobcm" || r.Scheme.String() == "obcm"
		if lazy && r.PeakOcc != o.Cfg.SecPBEntries {
			t.Errorf("%v: peak occupancy %d, want full SecPB (%d)", r.Scheme, r.PeakOcc, o.Cfg.SecPBEntries)
		}
		if !lazy && r.PeakOcc < o.Cfg.SecPBEntries*7/10 {
			t.Errorf("%v: peak occupancy %d, want >=70%% of capacity (%d)", r.Scheme, r.PeakOcc, o.Cfg.SecPBEntries)
		}
		if r.WorstJ <= 0 || r.ProvisionedJ <= 0 {
			t.Errorf("%v: non-positive energy (worst %.2e, provisioned %.2e)", r.Scheme, r.WorstJ, r.ProvisionedJ)
		}
		if r.Headroom < 0 {
			t.Errorf("%v: battery undersized under attack: headroom %.2e J", r.Scheme, r.Headroom)
		}
		// Peak occupancy at capacity means demand == provision exactly.
		if r.PeakOcc == o.Cfg.SecPBEntries && r.Headroom != 0 {
			t.Errorf("%v: headroom %.2e J at full occupancy, want exactly 0 (bound is tight)", r.Scheme, r.Headroom)
		}
		if r.GapP99 == 0 {
			t.Errorf("%v: zero p99 exposure gap under attack", r.Scheme)
		}
	}
	if !strings.Contains(tab.String(), "adv-battery") {
		t.Errorf("artifact does not name the pessimizer:\n%s", tab)
	}
}
