package harness

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/workload"
)

// cacheFixture returns a cell store with one persisted result and the
// inputs that key it.
func cacheFixture(t *testing.T) (*DiskCellStore, CellKey, engine.Result) {
	t.Helper()
	store, err := NewDiskCellStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithScheme(config.SchemeCOBCM)
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunBenchmark(cfg, prof, 2000)
	if err != nil {
		t.Fatal(err)
	}
	key := cellKey(cfg, prof, 2000)
	store.Save(key, res)
	return store, key, res
}

// recordPath returns the single record file the fixture wrote.
func recordPath(t *testing.T, store *DiskCellStore, key CellKey) string {
	t.Helper()
	p := store.path(key)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("expected record at %s: %v", p, err)
	}
	return p
}

func TestDiskCellStoreRoundTrip(t *testing.T) {
	store, key, want := cacheFixture(t)
	got, ok := store.Load(key)
	if !ok {
		t.Fatal("negative control failed: intact record did not load")
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if s := store.Stats(); s.Hits != 1 || s.Corrupt != 0 || s.Saves != 1 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestDiskCellStoreRejectsTruncatedRecord(t *testing.T) {
	store, key, _ := cacheFixture(t)
	p := recordPath(t, store, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); ok {
		t.Fatal("truncated record loaded")
	}
	var corrupt *CorruptCacheError
	if _, err := store.load(key); !errors.As(err, &corrupt) {
		t.Fatalf("want *CorruptCacheError for truncated record, got %v", err)
	}
	if s := store.Stats(); s.Corrupt != 1 {
		t.Fatalf("corrupt record not counted: %+v", s)
	}
}

func TestDiskCellStoreRejectsFlippedChecksumByte(t *testing.T) {
	store, key, _ := cacheFixture(t)
	p := recordPath(t, store, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the FNV seal no longer matches.
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); ok {
		t.Fatal("bit-flipped record loaded")
	}
	var corrupt *CorruptCacheError
	if _, err := store.load(key); !errors.As(err, &corrupt) {
		t.Fatalf("want *CorruptCacheError for flipped byte, got %v", err)
	}
}

func TestDiskCellStoreRejectsStaleVersionStamp(t *testing.T) {
	store, key, res := cacheFixture(t)
	p := recordPath(t, store, key)
	// Re-save the same value under a stale stamp (a record written by
	// an older simulator): a correctly sealed record must still be
	// rejected on the version check alone.
	stale := &DiskCellStore{diskStore[engine.Result]{
		dir: store.dir, kind: "cell/secpb-results-v0",
		enc: encodeResult, dec: decodeResult,
	}}
	stale.Save(key, res)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); ok {
		t.Fatal("stale-version record loaded")
	}
	var corrupt *CorruptCacheError
	if _, err := store.load(key); !errors.As(err, &corrupt) {
		t.Fatalf("want *CorruptCacheError for stale version, got %v", err)
	}
}

// TestMemoFallsBackToSimulationOnCorruptRecord is the end-to-end
// contract: a memo backed by a damaged store recomputes the cell,
// returns the correct value, and rewrites the record.
func TestMemoFallsBackToSimulationOnCorruptRecord(t *testing.T) {
	store, key, want := cacheFixture(t)
	p := recordPath(t, store, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01 // break the seal itself
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	memo := NewCellMemo()
	memo.SetStore(store)
	simulated := false
	got, hit, err := memo.Do(key, func() (engine.Result, error) {
		simulated = true
		return want, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || !simulated {
		t.Fatalf("corrupt record served as a hit (hit=%v simulated=%v)", hit, simulated)
	}
	if got != want {
		t.Fatalf("fallback result mismatch: %+v", got)
	}
	// The recomputed value must have been rewritten, and be loadable.
	if reread, ok := store.Load(key); !ok || reread != want {
		t.Fatalf("record not rewritten after fallback (ok=%v)", ok)
	}
	if hits, saves := memo.StoreStats(); hits != 0 || saves != 1 {
		t.Fatalf("unexpected memo store stats hits=%d saves=%d", hits, saves)
	}
}

// TestDiskCellStoreSkipsIntegrityViolations: a result carrying an
// integrity error must never be persisted.
func TestDiskCellStoreSkipsIntegrityViolations(t *testing.T) {
	store, err := NewDiskCellStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var key CellKey
	key[0] = 0xab
	store.Save(key, engine.Result{IntegrityErr: errors.New("tampered")})
	if _, statErr := os.Stat(store.path(key)); !os.IsNotExist(statErr) {
		t.Fatal("integrity-violated result was persisted")
	}
	if _, ok := store.Load(key); ok {
		t.Fatal("integrity-violated result loaded")
	}
}

// TestDiskBatteryStoreRoundTrip covers the second record codec.
func TestDiskBatteryStoreRoundTrip(t *testing.T) {
	store, err := NewDiskBatteryStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := BatteryCell{
		Scheme: "COBCM", Cores: 8, WorstCaseJ: 1.5, MeasuredJ: 0.25,
		PeakEntries: 96, SuperCapMM3: 12.5, LiThinMM3: 3.25,
		AggIPC: 4.75, Migrations: 17, ReadFlushes: 5,
	}
	var key CellKey
	key[0] = 0xcd
	store.Save(key, want)
	got, ok := store.Load(key)
	if !ok || got != want {
		t.Fatalf("battery round trip mismatch (ok=%v): %+v", ok, got)
	}
	// Cell and battery records share a directory but not a stamp: a
	// cell store must reject a battery record outright.
	cellStore := &DiskCellStore{diskStore[engine.Result]{
		dir: store.dir, kind: "cell/" + engine.ResultsVersion,
		enc: encodeResult, dec: decodeResult,
	}}
	if _, ok := cellStore.Load(key); ok {
		t.Fatal("cell store loaded a battery record")
	}
}

// TestDiskStoreFilenameIsContentKey pins the on-disk naming: one
// record per key, named by the hex content key.
func TestDiskStoreFilenameIsContentKey(t *testing.T) {
	store, key, _ := cacheFixture(t)
	p := recordPath(t, store, key)
	if filepath.Dir(p) != store.dir {
		t.Fatalf("record outside store dir: %s", p)
	}
	ents, err := os.ReadDir(store.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("want exactly one record file, got %d", len(ents))
	}
}
