package harness

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/stats"
)

// Ablation quantifies the design choices the paper singles out, on a
// representative benchmark pair (one low-NWPE, one high-NWPE):
//
//   - the Section IV.A data-value-independent coalescing optimization
//     (counter/OTP/BMT once per dirty entry vs once per store), and
//   - speculative integrity verification (PoisonIvy-style) vs blocking
//     verification on PM reads,
//   - separate vs unified metadata caches.
//
// Values are execution-time ratios of the ablated design over the
// default design (higher = the default choice matters more).
func Ablation(o Options) (*stats.Table, error) {
	benches := o.Benchmarks
	if len(benches) == 0 {
		benches = []string{"gamess", "povray", "mcf"}
	}
	tab := stats.NewTable("Ablations: ablated / default execution time",
		"Benchmark", "no-coalescing (CM)", "no-coalescing (NoGap)",
		"blocking-verify (COBCM)", "unified-MDC (COBCM)")

	// Per benchmark: four (default, ablated) config pairs.
	pairs := func() [][2]config.Config {
		cmBase := o.Cfg.WithScheme(config.SchemeCM)
		cmAbl := cmBase
		cmAbl.DisableDVICoalescing = true

		ngBase := o.Cfg.WithScheme(config.SchemeNoGap)
		ngAbl := ngBase
		ngAbl.DisableDVICoalescing = true

		spBase := o.Cfg.WithScheme(config.SchemeCOBCM)
		spAbl := spBase
		spAbl.Speculative = false

		mdcBase := o.Cfg.WithScheme(config.SchemeCOBCM)
		mdcAbl := mdcBase
		mdcAbl.UnifiedMDC = true

		return [][2]config.Config{
			{cmBase, cmAbl}, {ngBase, ngAbl}, {spBase, spAbl}, {mdcBase, mdcAbl},
		}
	}()
	perBench := 2 * len(pairs)
	jobs := make([]simJob, 0, len(benches)*perBench)
	for _, name := range benches {
		p, err := profileByName(name)
		if err != nil {
			return nil, err
		}
		for _, pair := range pairs {
			jobs = append(jobs, simJob{pair[0], p}, simJob{pair[1], p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for bi, name := range benches {
		cells := []string{name}
		for pi := range pairs {
			base := results[bi*perBench+2*pi]
			abl := results[bi*perBench+2*pi+1]
			cells = append(cells, fmt.Sprintf("%.2fx", float64(abl.Cycles)/float64(base.Cycles)))
		}
		tab.AddRowStrings(cells...)
	}
	return tab, nil
}
