package harness

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/stats"
)

// Ablation quantifies the design choices the paper singles out, on a
// representative benchmark pair (one low-NWPE, one high-NWPE):
//
//   - the Section IV.A data-value-independent coalescing optimization
//     (counter/OTP/BMT once per dirty entry vs once per store), and
//   - speculative integrity verification (PoisonIvy-style) vs blocking
//     verification on PM reads,
//   - separate vs unified metadata caches.
//
// Values are execution-time ratios of the ablated design over the
// default design (higher = the default choice matters more).
func Ablation(o Options) (*stats.Table, error) {
	benches := o.Benchmarks
	if len(benches) == 0 {
		benches = []string{"gamess", "povray", "mcf"}
	}
	tab := stats.NewTable("Ablations: ablated / default execution time",
		"Benchmark", "no-coalescing (CM)", "no-coalescing (NoGap)",
		"blocking-verify (COBCM)", "unified-MDC (COBCM)")
	for _, name := range benches {
		p, err := profileByName(name)
		if err != nil {
			return nil, err
		}

		ratio := func(base, ablated config.Config) (float64, error) {
			rb, err := o.run(base, p)
			if err != nil {
				return 0, err
			}
			ra, err := o.run(ablated, p)
			if err != nil {
				return 0, err
			}
			return float64(ra.Cycles) / float64(rb.Cycles), nil
		}

		cmBase := o.Cfg.WithScheme(config.SchemeCM)
		cmAbl := cmBase
		cmAbl.DisableDVICoalescing = true
		r1, err := ratio(cmBase, cmAbl)
		if err != nil {
			return nil, err
		}

		ngBase := o.Cfg.WithScheme(config.SchemeNoGap)
		ngAbl := ngBase
		ngAbl.DisableDVICoalescing = true
		r2, err := ratio(ngBase, ngAbl)
		if err != nil {
			return nil, err
		}

		spBase := o.Cfg.WithScheme(config.SchemeCOBCM)
		spAbl := spBase
		spAbl.Speculative = false
		r3, err := ratio(spBase, spAbl)
		if err != nil {
			return nil, err
		}

		mdcBase := o.Cfg.WithScheme(config.SchemeCOBCM)
		mdcAbl := mdcBase
		mdcAbl.UnifiedMDC = true
		r4, err := ratio(mdcBase, mdcAbl)
		if err != nil {
			return nil, err
		}

		tab.AddRowStrings(name,
			fmt.Sprintf("%.2fx", r1),
			fmt.Sprintf("%.2fx", r2),
			fmt.Sprintf("%.2fx", r3),
			fmt.Sprintf("%.2fx", r4))
	}
	return tab, nil
}
