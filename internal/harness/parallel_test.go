package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"secpb/internal/config"
)

// TestParallelDeterminism is the core guarantee of the parallel runner:
// the same experiment run serially and with many workers produces
// byte-identical artifacts, because every simulation is independent and
// results are reassembled in input order.
func TestParallelDeterminism(t *testing.T) {
	base := DefaultOptions()
	base.Ops = 4000
	base.Benchmarks = []string{"gamess", "mcf"}

	serial := base
	serial.Parallelism = 1
	wide := base
	wide.Parallelism = 8

	sGrid, sTab, err := Table4(serial)
	if err != nil {
		t.Fatal(err)
	}
	wGrid, wTab, err := Table4(wide)
	if err != nil {
		t.Fatal(err)
	}
	if sTab.String() != wTab.String() {
		t.Errorf("Table IV differs between Parallelism 1 and 8:\nserial:\n%s\nparallel:\n%s", sTab, wTab)
	}
	for _, sch := range sGrid.Schemes {
		if sGrid.Mean[sch] != wGrid.Mean[sch] {
			t.Errorf("scheme %v geomean: serial %v != parallel %v", sch, sGrid.Mean[sch], wGrid.Mean[sch])
		}
	}

	sVals, sBars, err := Figure7(serial)
	if err != nil {
		t.Fatal(err)
	}
	wVals, wBars, err := Figure7(wide)
	if err != nil {
		t.Fatal(err)
	}
	if sBars.String() != wBars.String() {
		t.Errorf("Figure 7 rendering differs between Parallelism 1 and 8")
	}
	for size, row := range sVals {
		for bench, v := range row {
			if wVals[size][bench] != v {
				t.Errorf("Figure 7 %s size %d: serial %v != parallel %v", bench, size, v, wVals[size][bench])
			}
		}
	}
}

// TestParallelSimulationErrorAborts injects a failing configuration and
// checks the pool surfaces the error instead of hanging or panicking.
func TestParallelSimulationErrorAborts(t *testing.T) {
	o := DefaultOptions()
	o.Ops = 4000
	o.Benchmarks = []string{"gamess", "mcf"}
	o.Parallelism = 4
	o.Cfg = config.Default()
	o.Cfg.BMTLevels = 0 // fails controller construction in every secure job

	done := make(chan error, 1)
	go func() {
		_, _, err := Table4(o)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Table4 with invalid config succeeded, want error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Table4 did not abort promptly on simulation error")
	}
}

// TestParallelContextCancellation checks a pre-cancelled context stops
// the experiment before it burns through the grid.
func TestParallelContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	o := DefaultOptions()
	o.Ops = 4000
	o.Benchmarks = []string{"gamess", "mcf"}
	o.Parallelism = 4
	o.Ctx = ctx

	start := time.Now()
	_, _, err := Table4(o)
	if err == nil {
		t.Fatal("Table4 with cancelled context succeeded, want error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled Table4 took %v, want prompt abort", elapsed)
	}
}
