// Persistent content-addressed cell cache: the on-disk second level
// behind CellMemo / BatteryMemo. A record is keyed by the same
// sha256(config|profile|ops) content key the in-memory memo uses, and
// carries a format/engine version stamp plus an FNV-64a seal over the
// whole record, so a warm -memodir run of the experiment grids replays
// results instead of simulating — and any record that is truncated,
// bit-flipped, or written by a different simulator version is rejected
// and transparently recomputed (then overwritten), never trusted.
package harness

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/runner"
)

// cacheMagic opens every record file.
const cacheMagic = "SPBC"

// CorruptCacheError reports a cache record that failed validation:
// bad magic, failed checksum, stale version stamp, or a payload that
// does not decode cleanly. It is typed (mirroring nvm's
// CorruptStateError discipline) so tests and tooling can distinguish
// "the cache is damaged" from an ordinary miss; the memo path treats
// both identically — fall back to simulation and rewrite.
type CorruptCacheError struct {
	Path   string
	Detail string
}

func (e *CorruptCacheError) Error() string {
	return fmt.Sprintf("harness: corrupt cache record %s: %s", e.Path, e.Detail)
}

// DiskStoreStats counts one store's activity.
type DiskStoreStats struct {
	Hits    uint64 // records served
	Misses  uint64 // absent records
	Corrupt uint64 // records rejected (checksum/version/decode)
	Saves   uint64 // records written
}

// recWriter serializes a record payload in fixed field order.
type recWriter struct{ buf []byte }

func (w *recWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *recWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *recWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *recWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// recReader consumes a record payload; any over-read marks it bad.
type recReader struct {
	buf []byte
	pos int
	bad bool
}

func (r *recReader) u64() uint64 {
	if r.pos+8 > len(r.buf) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}
func (r *recReader) i64() int64   { return int64(r.u64()) }
func (r *recReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *recReader) str() string {
	n := r.u64()
	if r.bad || uint64(r.pos)+n > uint64(len(r.buf)) {
		r.bad = true
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// done reports whether the payload decoded cleanly and completely:
// no over-read and no trailing bytes (a short record that still seals
// correctly must not silently zero-fill fields).
func (r *recReader) done() bool { return !r.bad && r.pos == len(r.buf) }

// diskStore is the shared record machinery: one file per key under
// dir, record = magic | kind+version stamp | payload | FNV-64a seal.
// Writes go through a temp file and an atomic rename, so a crashed or
// concurrent writer can never expose a half-written record (it would
// fail the seal anyway and be recomputed).
type diskStore[V any] struct {
	dir  string
	kind string // format discriminator + engine.ResultsVersion
	enc  func(w *recWriter, v *V)
	dec  func(r *recReader, v *V)
	skip func(v *V) bool // veto persisting this value (may be nil)

	mu    sync.Mutex
	stats DiskStoreStats
}

func (s *diskStore[V]) path(key CellKey) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+".spbc")
}

// Load implements runner.MemoStore: any unusable record is a miss.
func (s *diskStore[V]) Load(key CellKey) (V, bool) {
	v, err := s.load(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.stats.Hits++
		return v, true
	case os.IsNotExist(err):
		s.stats.Misses++
	default:
		s.stats.Corrupt++
	}
	var zero V
	return zero, false
}

// load reads and validates one record, returning a *CorruptCacheError
// for anything structurally wrong with an existing file.
func (s *diskStore[V]) load(key CellKey) (V, error) {
	var v V
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return v, err
	}
	if len(raw) < len(cacheMagic)+8 {
		return v, &CorruptCacheError{Path: path, Detail: "truncated record"}
	}
	body, sealed := raw[:len(raw)-8], binary.LittleEndian.Uint64(raw[len(raw)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sealed {
		return v, &CorruptCacheError{Path: path, Detail: "checksum mismatch"}
	}
	if string(body[:len(cacheMagic)]) != cacheMagic {
		return v, &CorruptCacheError{Path: path, Detail: "bad magic"}
	}
	r := &recReader{buf: body[len(cacheMagic):]}
	if kind := r.str(); kind != s.kind {
		return v, &CorruptCacheError{Path: path,
			Detail: fmt.Sprintf("version stamp %q, want %q", kind, s.kind)}
	}
	s.dec(r, &v)
	if !r.done() {
		return v, &CorruptCacheError{Path: path, Detail: "payload does not decode"}
	}
	return v, nil
}

// Save implements runner.MemoStore. Failures are silent: the cache is
// an accelerator, and a value that fails to persist simply gets
// recomputed next run.
func (s *diskStore[V]) Save(key CellKey, v V) {
	if s.skip != nil && s.skip(&v) {
		return
	}
	w := &recWriter{buf: make([]byte, 0, 512)}
	w.buf = append(w.buf, cacheMagic...)
	w.str(s.kind)
	s.enc(w, &v)
	h := fnv.New64a()
	h.Write(w.buf)
	w.u64(h.Sum64())

	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(w.buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), s.path(key)) != nil {
		os.Remove(tmp.Name())
		return
	}
	s.mu.Lock()
	s.stats.Saves++
	s.mu.Unlock()
}

// Stats returns the store's cumulative activity.
func (s *diskStore[V]) Stats() DiskStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DiskCellStore persists engine.Result cells; attach with
// CellMemo.SetStore. Results carrying an integrity error are never
// persisted — a violated run must always resimulate.
type DiskCellStore struct {
	diskStore[engine.Result]
}

var _ runner.MemoStore[CellKey, engine.Result] = (*DiskCellStore)(nil)

// NewDiskCellStore opens (creating if needed) a cell cache directory.
func NewDiskCellStore(dir string) (*DiskCellStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCellStore{diskStore[engine.Result]{
		dir:  dir,
		kind: "cell/" + engine.ResultsVersion,
		enc:  encodeResult,
		dec:  decodeResult,
		skip: func(r *engine.Result) bool { return r.IntegrityErr != nil },
	}}, nil
}

// encodeResult/decodeResult must walk the exact same field order; the
// version stamp (via engine.ResultsVersion) changes whenever Result
// does, so the pair never reads a record written under another layout.
func encodeResult(w *recWriter, r *engine.Result) {
	w.str(r.Benchmark)
	w.i64(int64(r.Scheme))
	w.u64(r.Cycles)
	w.u64(r.Instructions)
	w.u64(r.Loads)
	w.u64(r.Stores)
	w.f64(r.PPTI)
	w.f64(r.NWPE)
	w.f64(r.IPC)
	w.u64(r.EntriesAllocated)
	w.i64(int64(r.PeakOccupancy))
	w.u64(r.BMTRootUpdates)
	w.u64(r.EarlyBMTWalks)
	w.u64(r.PBServedLoads)
	w.u64(r.Backpressure)
	w.u64(r.SBStall)
	w.u64(r.LoadStall)
	w.f64(r.GapMean)
	w.u64(r.GapP99)
	w.u64(r.PMReads)
	w.u64(r.PMWrites)
	w.f64(r.L1Hit)
	w.f64(r.LLCHit)
	w.u64(r.Reencryptions)
}

func decodeResult(rd *recReader, r *engine.Result) {
	r.Benchmark = rd.str()
	r.Scheme = config.Scheme(rd.i64())
	r.Cycles = rd.u64()
	r.Instructions = rd.u64()
	r.Loads = rd.u64()
	r.Stores = rd.u64()
	r.PPTI = rd.f64()
	r.NWPE = rd.f64()
	r.IPC = rd.f64()
	r.EntriesAllocated = rd.u64()
	r.PeakOccupancy = int(rd.i64())
	r.BMTRootUpdates = rd.u64()
	r.EarlyBMTWalks = rd.u64()
	r.PBServedLoads = rd.u64()
	r.Backpressure = rd.u64()
	r.SBStall = rd.u64()
	r.LoadStall = rd.u64()
	r.GapMean = rd.f64()
	r.GapP99 = rd.u64()
	r.PMReads = rd.u64()
	r.PMWrites = rd.u64()
	r.L1Hit = rd.f64()
	r.LLCHit = rd.f64()
	r.Reencryptions = rd.u64()
}

// DiskBatteryStore persists multicore BatteryCell cells; attach with
// BatteryMemo.SetStore.
type DiskBatteryStore struct {
	diskStore[BatteryCell]
}

var _ runner.MemoStore[CellKey, BatteryCell] = (*DiskBatteryStore)(nil)

// NewDiskBatteryStore opens (creating if needed) a battery-cell cache
// directory.
func NewDiskBatteryStore(dir string) (*DiskBatteryStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskBatteryStore{diskStore[BatteryCell]{
		dir:  dir,
		kind: "battery/" + engine.ResultsVersion,
		enc:  encodeBatteryCell,
		dec:  decodeBatteryCell,
	}}, nil
}

func encodeBatteryCell(w *recWriter, c *BatteryCell) {
	w.str(c.Scheme)
	w.i64(int64(c.Cores))
	w.f64(c.WorstCaseJ)
	w.f64(c.MeasuredJ)
	w.i64(int64(c.PeakEntries))
	w.f64(c.SuperCapMM3)
	w.f64(c.LiThinMM3)
	w.f64(c.AggIPC)
	w.u64(c.Migrations)
	w.u64(c.ReadFlushes)
}

func decodeBatteryCell(rd *recReader, c *BatteryCell) {
	c.Scheme = rd.str()
	c.Cores = int(rd.i64())
	c.WorstCaseJ = rd.f64()
	c.MeasuredJ = rd.f64()
	c.PeakEntries = int(rd.i64())
	c.SuperCapMM3 = rd.f64()
	c.LiThinMM3 = rd.f64()
	c.AggIPC = rd.f64()
	c.Migrations = rd.u64()
	c.ReadFlushes = rd.u64()
}
