package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"secpb/internal/workload"
)

func zooOptions(ops uint64) Options {
	o := DefaultOptions()
	o.Ops = ops
	return o
}

// TestZooReplayIdentity is the end-to-end replay-identity gate: the zoo
// artifact produced by replaying RecordTraces output through
// Options.TraceDir must be byte-identical to the live-generator
// artifact, at serial and parallel fan-out and with memoization on.
func TestZooReplayIdentity(t *testing.T) {
	o := zooOptions(3000)
	o.Benchmarks = []string{"kvstore", "wal", "adv-occupancy"}
	liveRows, liveTab, err := Zoo(o)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := RecordTraces(dir, o.Benchmarks, o.Cfg.Seed, o.Ops); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		ro := o
		ro.TraceDir = dir
		ro.Parallelism = par
		ro.Memo = NewCellMemo()
		recRows, recTab, err := Zoo(ro)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if !reflect.DeepEqual(liveRows, recRows) {
			t.Errorf("parallel=%d: replayed zoo rows differ from live run", par)
		}
		if live, rec := liveTab.String(), recTab.String(); live != rec {
			t.Errorf("parallel=%d: replayed artifact differs:\nlive:\n%s\nreplay:\n%s", par, live, rec)
		}
	}
}

// TestRecordTracesFiles: one .spb2 per benchmark, no temp droppings.
func TestRecordTracesFiles(t *testing.T) {
	dir := t.TempDir()
	names := []string{"kvstore", "gamess"}
	if err := RecordTraces(dir, names, 1, 500); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(names) {
		t.Fatalf("got %d files, want %d", len(ents), len(names))
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(dir, name+".spb2")); err != nil {
			t.Errorf("missing recorded trace: %v", err)
		}
	}
}

func TestRecordTracesUnknownName(t *testing.T) {
	if err := RecordTraces(t.TempDir(), []string{"no-such-bench"}, 1, 10); err == nil {
		t.Fatal("RecordTraces accepted an unknown benchmark name")
	}
}

// TestZooTraceDirMissingFile: replay against a directory without the
// benchmark's trace must fail loudly, not fall back to live generation.
func TestZooTraceDirMissingFile(t *testing.T) {
	o := zooOptions(500)
	o.Benchmarks = []string{"kvstore"}
	o.TraceDir = t.TempDir()
	if _, _, err := Zoo(o); err == nil {
		t.Fatal("Zoo replayed from an empty trace directory without error")
	}
}

// TestZooDefaultsAndTable: defaults cover the whole zoo; artifact lists
// every workload and every scheme column.
func TestZooDefaultsAndTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full zoo grid")
	}
	o := zooOptions(2000)
	rows, tab, err := Zoo(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.ZooNames()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(workload.ZooNames()))
	}
	art := tab.String()
	for _, name := range workload.ZooNames() {
		if !strings.Contains(art, name) {
			t.Errorf("artifact missing workload %q", name)
		}
	}
	for _, col := range []string{"PPTI", "NWPE", "PeakOcc", "BP%", "cobcm", "nogap"} {
		if !strings.Contains(art, col) {
			t.Errorf("artifact missing column %q:\n%s", col, art)
		}
	}
	for _, r := range rows {
		if r.PPTI <= 0 || r.NWPE < 1 {
			t.Errorf("%s: implausible stream stats PPTI=%.2f NWPE=%.2f", r.Bench, r.PPTI, r.NWPE)
		}
		if len(r.Slowdown) != len(zooSchemes()) {
			t.Errorf("%s: %d slowdown entries, want %d", r.Bench, len(r.Slowdown), len(zooSchemes()))
		}
	}
	t.Logf("zoo artifact:\n%s", art)
}
