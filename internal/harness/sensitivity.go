package harness

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/stats"
)

// GapsReport measures the battery-exposure window of Figure 3: the
// cycles from a store's point of persistency until its memory tuple is
// fully drained (draining gap + sec-sync gap). Lazier schemes are
// expected to show no larger windows — the drain pipeline is the same —
// but the work *inside* the window (what the battery must finish after
// a crash) grows; the table shows both.
func GapsReport(o Options) (*stats.Table, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Battery-exposure windows per scheme (PoP -> tuple drained)",
		"Benchmark", "Scheme", "Mean cycles", "P99 cycles", "Crash work (per entry)")
	for _, p := range profs {
		for _, s := range config.SecPBSchemes() {
			res, err := o.run(o.Cfg.WithScheme(s), p)
			if err != nil {
				return nil, err
			}
			// Summarize crash-time work qualitatively from the scheme.
			e := s.Early()
			work := 0
			for _, late := range []bool{!e.Counter, !e.OTP, !e.BMT, !e.Ciphertext, !e.MAC} {
				if late {
					work++
				}
			}
			tab.AddRowStrings(p.Name, s.String(),
				fmt.Sprintf("%.0f", res.GapMean),
				fmt.Sprintf("%d", res.GapP99),
				fmt.Sprintf("%d/5 tuple steps", work))
		}
	}
	return tab, nil
}

// Sensitivity sweeps the security-mechanism parameters around the
// paper's operating point (Table I) to show which latencies the results
// hinge on: the MAC/hash latency (40 cycles), the BMT height (8
// levels), and the SecPB drain watermark.
func Sensitivity(o Options) (*stats.Table, error) {
	benches := o.Benchmarks
	if len(benches) == 0 {
		benches = []string{"gamess", "povray"}
	}
	tab := stats.NewTable("Sensitivity of CM overhead to security-mechanism parameters",
		"Benchmark", "Parameter", "Value", "Slowdown vs BBB")
	for _, name := range benches {
		p, err := profileByName(name)
		if err != nil {
			return nil, err
		}
		base, err := o.run(o.Cfg.WithScheme(config.SchemeBBB), p)
		if err != nil {
			return nil, err
		}
		ratioFor := func(cfg config.Config) (float64, error) {
			res, err := o.run(cfg, p)
			if err != nil {
				return 0, err
			}
			return float64(res.Cycles) / float64(base.Cycles), nil
		}

		for _, lat := range []uint64{20, 40, 80} {
			cfg := o.Cfg.WithScheme(config.SchemeCM)
			cfg.MACLatency = lat
			r, err := ratioFor(cfg)
			if err != nil {
				return nil, err
			}
			tab.AddRowStrings(name, "MAC/hash latency", fmt.Sprintf("%d cy", lat), fmt.Sprintf("%.2fx", r))
		}
		for _, h := range []int{4, 8, 12} {
			cfg := o.Cfg.WithScheme(config.SchemeCM)
			cfg.BMTLevels = h
			r, err := ratioFor(cfg)
			if err != nil {
				return nil, err
			}
			tab.AddRowStrings(name, "BMT height", fmt.Sprintf("%d levels", h), fmt.Sprintf("%.2fx", r))
		}
		for _, hi := range []float64{0.5, 0.75, 0.9} {
			cfg := o.Cfg.WithScheme(config.SchemeCOBCM)
			cfg.DrainHi = hi
			r, err := ratioFor(cfg)
			if err != nil {
				return nil, err
			}
			tab.AddRowStrings(name, "drain high watermark", fmt.Sprintf("%.0f%%", hi*100), fmt.Sprintf("%.2fx", r))
		}
	}
	return tab, nil
}
