package harness

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/stats"
)

// GapsReport measures the battery-exposure window of Figure 3: the
// cycles from a store's point of persistency until its memory tuple is
// fully drained (draining gap + sec-sync gap). Lazier schemes are
// expected to show no larger windows — the drain pipeline is the same —
// but the work *inside* the window (what the battery must finish after
// a crash) grows; the table shows both.
func GapsReport(o Options) (*stats.Table, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Battery-exposure windows per scheme (PoP -> tuple drained)",
		"Benchmark", "Scheme", "Mean cycles", "P99 cycles", "Crash work (per entry)")
	schemes := config.SecPBSchemes()
	jobs := make([]simJob, 0, len(profs)*len(schemes))
	for _, p := range profs {
		for _, s := range schemes {
			jobs = append(jobs, simJob{o.Cfg.WithScheme(s), p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for pi, p := range profs {
		for si, s := range schemes {
			res := results[pi*len(schemes)+si]
			// Summarize crash-time work qualitatively from the scheme.
			e := s.Early()
			work := 0
			for _, late := range []bool{!e.Counter, !e.OTP, !e.BMT, !e.Ciphertext, !e.MAC} {
				if late {
					work++
				}
			}
			tab.AddRowStrings(p.Name, s.String(),
				fmt.Sprintf("%.0f", res.GapMean),
				fmt.Sprintf("%d", res.GapP99),
				fmt.Sprintf("%d/5 tuple steps", work))
		}
	}
	return tab, nil
}

// Sensitivity sweeps the security-mechanism parameters around the
// paper's operating point (Table I) to show which latencies the results
// hinge on: the MAC/hash latency (40 cycles), the BMT height (8
// levels), and the SecPB drain watermark.
func Sensitivity(o Options) (*stats.Table, error) {
	benches := o.Benchmarks
	if len(benches) == 0 {
		benches = []string{"gamess", "povray"}
	}
	tab := stats.NewTable("Sensitivity of CM overhead to security-mechanism parameters",
		"Benchmark", "Parameter", "Value", "Slowdown vs BBB")

	// Per benchmark: a BBB baseline plus one config per swept point.
	type point struct {
		param, value string
		cfg          config.Config
	}
	points := func() []point {
		var ps []point
		for _, lat := range []uint64{20, 40, 80} {
			cfg := o.Cfg.WithScheme(config.SchemeCM)
			cfg.MACLatency = lat
			ps = append(ps, point{"MAC/hash latency", fmt.Sprintf("%d cy", lat), cfg})
		}
		for _, h := range []int{4, 8, 12} {
			cfg := o.Cfg.WithScheme(config.SchemeCM)
			cfg.BMTLevels = h
			ps = append(ps, point{"BMT height", fmt.Sprintf("%d levels", h), cfg})
		}
		for _, hi := range []float64{0.5, 0.75, 0.9} {
			cfg := o.Cfg.WithScheme(config.SchemeCOBCM)
			cfg.DrainHi = hi
			ps = append(ps, point{"drain high watermark", fmt.Sprintf("%.0f%%", hi*100), cfg})
		}
		return ps
	}()
	perBench := 1 + len(points)
	jobs := make([]simJob, 0, len(benches)*perBench)
	for _, name := range benches {
		p, err := profileByName(name)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeBBB), p})
		for _, pt := range points {
			jobs = append(jobs, simJob{pt.cfg, p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for bi, name := range benches {
		base := results[bi*perBench]
		for pi, pt := range points {
			res := results[bi*perBench+1+pi]
			r := float64(res.Cycles) / float64(base.Cycles)
			tab.AddRowStrings(name, pt.param, pt.value, fmt.Sprintf("%.2fx", r))
		}
	}
	return tab, nil
}
