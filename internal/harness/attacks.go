// Persistence-based attack studies (after Yao & Venkataramani): the
// adversarial zoo generators driven against the battery-sizing model.
// The battery-drain pessimizer (adv-battery) is the workload
// StressBattery exists for — it pins every SecPB entry at maximum
// drain cost and keeps the buffer full, so the measured worst case
// must land exactly on the provisioned capacity-sized budget.
package harness

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/stats"
	"secpb/internal/workload"
)

// StressRow is one scheme's line of the battery-stress report.
type StressRow struct {
	Scheme config.Scheme
	// PeakOcc is the high-water SecPB occupancy the pessimizer reached.
	PeakOcc int
	// WorstJ is the drain energy a crash at peak occupancy demands.
	WorstJ float64
	// ProvisionedJ is the capacity-sized battery from the Table V model.
	ProvisionedJ float64
	// Headroom is ProvisionedJ - WorstJ; negative means the battery is
	// undersized for this adversary.
	Headroom float64
	// GapP99 is the 99th-percentile battery-exposure window (cycles
	// from point of persistency to drain completion) under attack.
	GapP99 uint64
}

// StressBattery runs the battery-drain pessimizer (the adv-battery zoo
// profile) under every SecPB scheme and checks the measured worst-case
// drain demand against the provisioned capacity-sized battery. The
// paper sizes batteries for a full SecPB (Table V); this experiment
// shows an adversary actually reaches that bound under the lazy
// schemes — exactly the ones with the largest per-entry drain cost —
// so nothing smaller than the capacity-sized budget is safe. Eager
// schemes throttle allocation upstream (early crypto work stalls the
// store pipeline first) and peak a few entries below capacity.
func StressBattery(o Options) ([]StressRow, *stats.Table, error) {
	prof, err := workload.ByName("adv-battery")
	if err != nil {
		return nil, nil, err
	}
	schemes := zooSchemes()
	jobs := make([]simJob, len(schemes))
	for i, s := range schemes {
		jobs[i] = simJob{o.Cfg.WithScheme(s), prof}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("Battery stress (adv-battery pessimizer), %d-entry SecPB", o.Cfg.SecPBEntries),
		"Scheme", "PeakOcc", "WorstJ", "ProvisionedJ", "Headroom", "GapP99")
	rows := make([]StressRow, 0, len(schemes))
	for i, s := range schemes {
		res := results[i]
		perEntry, err := energy.PerEntryDrainJ(s, o.Cfg.BMTLevels)
		if err != nil {
			return nil, nil, err
		}
		prov, err := energy.SecPBEnergy(s, o.Cfg.SecPBEntries, o.Cfg.BMTLevels)
		if err != nil {
			return nil, nil, err
		}
		row := StressRow{
			Scheme:       s,
			PeakOcc:      res.PeakOccupancy,
			WorstJ:       float64(res.PeakOccupancy) * perEntry,
			ProvisionedJ: prov,
			GapP99:       res.GapP99,
		}
		row.Headroom = row.ProvisionedJ - row.WorstJ
		tab.AddRowStrings(s.String(),
			fmt.Sprintf("%d", row.PeakOcc),
			fmt.Sprintf("%.2e", row.WorstJ),
			fmt.Sprintf("%.2e", row.ProvisionedJ),
			fmt.Sprintf("%.2e", row.Headroom),
			fmt.Sprintf("%d", row.GapP99))
		rows = append(rows, row)
	}
	return rows, tab, nil
}
