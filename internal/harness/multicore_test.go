package harness

import (
	"bytes"
	"testing"

	"secpb/internal/config"
)

// TestMulticoreBatteryGrid checks the scheme × core-count grid's shape
// and the sizing arithmetic: worst case scales with the buffer count,
// measured peak is positive and never exceeds worst case.
func TestMulticoreBatteryGrid(t *testing.T) {
	o := quickOpts()
	o.Ops = 600
	grid, table, err := MulticoreBattery(o, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(config.SecPBSchemes()) * 3
	if len(grid.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(grid.Cells), wantCells)
	}
	if table.NumRows() != wantCells {
		t.Fatalf("table has %d rows, want %d", table.NumRows(), wantCells)
	}
	byScheme := map[string]map[int]BatteryCell{}
	for _, c := range grid.Cells {
		if byScheme[c.Scheme] == nil {
			byScheme[c.Scheme] = map[int]BatteryCell{}
		}
		byScheme[c.Scheme][c.Cores] = c
		if c.PeakEntries <= 0 {
			t.Errorf("%s x%d: peak entries %d", c.Scheme, c.Cores, c.PeakEntries)
		}
		if c.MeasuredJ <= 0 || c.MeasuredJ > c.WorstCaseJ {
			t.Errorf("%s x%d: measured %.3g J outside (0, worst %.3g]", c.Scheme, c.Cores, c.MeasuredJ, c.WorstCaseJ)
		}
	}
	for scheme, cells := range byScheme {
		// 2 cores hold 4 buffers (private + shared), 4 cores hold 8:
		// worst case doubles from 2 to 4 cores and is 4x the 1-core case.
		if cells[2].WorstCaseJ != 4*cells[1].WorstCaseJ {
			t.Errorf("%s: worst case at 2 cores %.3g != 4x 1-core %.3g", scheme, cells[2].WorstCaseJ, cells[1].WorstCaseJ)
		}
		if cells[4].WorstCaseJ != 2*cells[2].WorstCaseJ {
			t.Errorf("%s: worst case at 4 cores %.3g != 2x 2-core %.3g", scheme, cells[4].WorstCaseJ, cells[2].WorstCaseJ)
		}
	}
}

// TestMulticoreBatteryDeterminism: the JSON artifact must be
// byte-identical between a serial and a parallel harness run.
func TestMulticoreBatteryDeterminism(t *testing.T) {
	render := func(parallelism int) []byte {
		o := quickOpts()
		o.Ops = 400
		o.Parallelism = parallelism
		grid, _, err := MulticoreBattery(o, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := grid.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("battery grid differs between serial and parallel runs:\n%s\n---\n%s", serial, parallel)
	}
}
