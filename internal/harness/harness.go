// Package harness regenerates every table and figure of the paper's
// evaluation (Section VI) from the simulator: Table IV (scheme
// slowdowns), Figure 6 (per-benchmark execution time), Table V (battery
// estimates), Table VI (battery vs SecPB size), Figure 7 (execution
// time vs SecPB size under CM), Figure 8 (BMT root-update reduction),
// Figure 9 (BMF height study), and the Section VI.B statistics report
// (PPTI / NWPE / analytical IPC cross-check).
//
// Each experiment returns both raw numbers (for tests and downstream
// tooling) and a rendered plain-text artifact in the paper's format.
package harness

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/stats"
	"secpb/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Ops is the number of memory operations simulated per benchmark
	// per configuration.
	Ops uint64
	// Cfg is the base system configuration (scheme/size fields are
	// overridden per experiment).
	Cfg config.Config
	// Benchmarks optionally restricts the benchmark set (default all).
	Benchmarks []string
	// Progress, if non-nil, receives a line per completed simulation.
	Progress func(msg string)
}

// DefaultOptions returns the standard experiment setup.
func DefaultOptions() Options {
	return Options{Ops: 100_000, Cfg: config.Default()}
}

func (o *Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

func profileByName(name string) (workload.Profile, error) {
	return workload.ByName(name)
}

func (o *Options) profiles() ([]workload.Profile, error) {
	if len(o.Benchmarks) == 0 {
		return workload.Profiles(), nil
	}
	var ps []workload.Profile
	for _, name := range o.Benchmarks {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// run simulates one (benchmark, config) pair.
func (o *Options) run(cfg config.Config, prof workload.Profile) (engine.Result, error) {
	res, err := engine.RunBenchmark(cfg, prof, o.Ops)
	if err != nil {
		return res, fmt.Errorf("harness: %s/%v: %w", prof.Name, cfg.Scheme, err)
	}
	o.progress("%s", res)
	return res, nil
}

// SlowdownGrid holds normalized execution times: Ratio[bench][scheme].
type SlowdownGrid struct {
	Schemes []config.Scheme
	Benches []string
	Ratio   map[string]map[config.Scheme]float64
	// Mean is the geometric-mean slowdown per scheme — the "average"
	// of the paper's Table IV.
	Mean map[config.Scheme]float64
}

// slowdowns runs every benchmark under baseline BBB plus the given
// schemes at the given SecPB size, returning normalized execution time.
func (o *Options) slowdowns(schemes []config.Scheme, entries int) (*SlowdownGrid, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, err
	}
	grid := &SlowdownGrid{
		Schemes: schemes,
		Ratio:   map[string]map[config.Scheme]float64{},
		Mean:    map[config.Scheme]float64{},
	}
	geo := map[config.Scheme]*stats.GeoMean{}
	for _, s := range schemes {
		geo[s] = &stats.GeoMean{}
	}
	for _, p := range profs {
		grid.Benches = append(grid.Benches, p.Name)
		base, err := o.run(o.Cfg.WithScheme(config.SchemeBBB).WithSecPBEntries(entries), p)
		if err != nil {
			return nil, err
		}
		row := map[config.Scheme]float64{}
		for _, s := range schemes {
			res, err := o.run(o.Cfg.WithScheme(s).WithSecPBEntries(entries), p)
			if err != nil {
				return nil, err
			}
			ratio := float64(res.Cycles) / float64(base.Cycles)
			row[s] = ratio
			if err := geo[s].Add(ratio); err != nil {
				return nil, err
			}
		}
		grid.Ratio[p.Name] = row
	}
	for _, s := range schemes {
		grid.Mean[s] = geo[s].Value()
	}
	return grid, nil
}

// Table4 regenerates Table IV: mean slowdown per scheme with the
// default 32-entry SecPB, normalized to the insecure BBB baseline.
func Table4(o Options) (*SlowdownGrid, *stats.Table, error) {
	grid, err := o.slowdowns(config.SecPBSchemes(), o.Cfg.SecPBEntries)
	if err != nil {
		return nil, nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("Table IV: performance overheads, %d-entry SecPB (vs insecure BBB)", o.Cfg.SecPBEntries),
		"Model", "Slowdown")
	// Present laziest-first like the paper.
	order := []config.Scheme{
		config.SchemeCOBCM, config.SchemeOBCM, config.SchemeBCM,
		config.SchemeCM, config.SchemeM, config.SchemeNoGap,
	}
	for _, s := range order {
		tab.AddRowStrings(s.String(), stats.Percent(grid.Mean[s]))
	}
	return grid, tab, nil
}

// Figure6 regenerates Figure 6: per-benchmark execution time of every
// scheme normalized to BBB.
func Figure6(o Options) (*SlowdownGrid, *stats.BarSeries, error) {
	grid, err := o.slowdowns(config.SecPBSchemes(), o.Cfg.SecPBEntries)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(grid.Schemes))
	for i, s := range grid.Schemes {
		names[i] = s.String()
	}
	bars := stats.NewBarSeries(
		fmt.Sprintf("Figure 6: execution time, %d-entry SecPB, normalized to BBB", o.Cfg.SecPBEntries),
		names...)
	bars.SetUnit("x")
	for _, b := range grid.Benches {
		vals := make([]float64, len(grid.Schemes))
		for i, s := range grid.Schemes {
			vals[i] = grid.Ratio[b][s]
		}
		bars.Add(b, vals...)
	}
	return grid, bars, nil
}

// Table5 regenerates Table V: energy-source size estimates per scheme
// plus the s_eADR / BBB / eADR comparators.
func Table5(cfg config.Config) ([]energy.Estimate, *stats.Table, error) {
	rows, err := energy.Table5(cfg)
	if err != nil {
		return nil, nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("Table V: energy source size, %d-entry SecPB (per core)", cfg.SecPBEntries),
		"System", "SuperCap mm3", "Li-Thin mm3", "SuperCap %core", "Li-Thin %core")
	for _, r := range rows {
		tab.AddRowStrings(r.Name,
			fmt.Sprintf("%.2f", r.SuperCapMM3),
			fmt.Sprintf("%.3f", r.LiThinMM3),
			fmt.Sprintf("%.1f%%", r.SuperCapPct),
			fmt.Sprintf("%.1f%%", r.LiThinPct))
	}
	return rows, tab, nil
}

// Table6Sizes is the paper's Table VI size sweep.
var Table6Sizes = []int{8, 16, 32, 64, 128, 256, 512}

// Table6 regenerates Table VI: battery capacity versus SecPB size for
// the COBCM and NoGap models.
func Table6(cfg config.Config) (*stats.Table, error) {
	cobcm, nogap, err := energy.Table6(cfg, Table6Sizes)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Table VI: battery capacity vs SecPB size (SuperCap / Li-Thin mm3)",
		"Size", "COBCM SuperCap", "COBCM Li-Thin", "NoGap SuperCap", "NoGap Li-Thin")
	for i, n := range Table6Sizes {
		tab.AddRowStrings(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", cobcm[i].SuperCapMM3),
			fmt.Sprintf("%.3f", cobcm[i].LiThinMM3),
			fmt.Sprintf("%.2f", nogap[i].SuperCapMM3),
			fmt.Sprintf("%.3f", nogap[i].LiThinMM3))
	}
	return tab, nil
}

// Figure7Sizes is the paper's Figure 7 size sweep.
var Figure7Sizes = []int{8, 16, 32, 64, 128, 512}

// Figure7 regenerates Figure 7: execution time of the CM model across
// SecPB sizes, normalized to BBB at the same size.
func Figure7(o Options) (map[int]map[string]float64, *stats.BarSeries, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(Figure7Sizes))
	for i, n := range Figure7Sizes {
		names[i] = fmt.Sprintf("%d-entry", n)
	}
	bars := stats.NewBarSeries("Figure 7: execution time of CM across SecPB sizes, normalized to BBB", names...)
	bars.SetUnit("x")
	out := map[int]map[string]float64{}
	for _, n := range Figure7Sizes {
		out[n] = map[string]float64{}
	}
	for _, p := range profs {
		vals := make([]float64, 0, len(Figure7Sizes))
		for _, n := range Figure7Sizes {
			base, err := o.run(o.Cfg.WithScheme(config.SchemeBBB).WithSecPBEntries(n), p)
			if err != nil {
				return nil, nil, err
			}
			res, err := o.run(o.Cfg.WithScheme(config.SchemeCM).WithSecPBEntries(n), p)
			if err != nil {
				return nil, nil, err
			}
			ratio := float64(res.Cycles) / float64(base.Cycles)
			out[n][p.Name] = ratio
			vals = append(vals, ratio)
		}
		bars.Add(p.Name, vals...)
	}
	return out, bars, nil
}

// Figure8 regenerates Figure 8: total BMT root updates per scheme and
// per CM SecPB size, normalized to sec_wt (the per-store write-through
// count, i.e. the SP baseline's one update per store).
func Figure8(o Options) (map[string]map[string]float64, *stats.Table, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	out := map[string]map[string]float64{}
	cols := []string{}
	for _, s := range config.SecPBSchemes() {
		cols = append(cols, s.String()+"-32")
	}
	for _, n := range Figure7Sizes {
		cols = append(cols, fmt.Sprintf("cm-%d", n))
	}
	tab := stats.NewTable("Figure 8: BMT root updates normalized to sec_wt (1 update per store)",
		append([]string{"Benchmark"}, cols...)...)
	for _, p := range profs {
		row := map[string]float64{}
		cells := []string{p.Name}
		for _, s := range config.SecPBSchemes() {
			res, err := o.run(o.Cfg.WithScheme(s), p)
			if err != nil {
				return nil, nil, err
			}
			frac := float64(res.BMTRootUpdates) / float64(res.Stores)
			row[s.String()+"-32"] = frac
			cells = append(cells, fmt.Sprintf("%.1f%%", frac*100))
		}
		for _, n := range Figure7Sizes {
			res, err := o.run(o.Cfg.WithScheme(config.SchemeCM).WithSecPBEntries(n), p)
			if err != nil {
				return nil, nil, err
			}
			frac := float64(res.BMTRootUpdates) / float64(res.Stores)
			row[fmt.Sprintf("cm-%d", n)] = frac
			cells = append(cells, fmt.Sprintf("%.1f%%", frac*100))
		}
		out[p.Name] = row
		tab.AddRowStrings(cells...)
	}
	return out, tab, nil
}

// Figure9 regenerates Figure 9: the BMT height study — CM with DBMF and
// SBMF versus the SP baseline with the same forests, normalized to BBB.
func Figure9(o Options) (map[string]map[string]float64, *stats.BarSeries, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	type variant struct {
		name   string
		scheme config.Scheme
		bmf    config.BMFMode
	}
	variants := []variant{
		{"sp_dbmf", config.SchemeSP, config.BMFDynamic},
		{"sp_sbmf", config.SchemeSP, config.BMFStatic},
		{"cm_dbmf", config.SchemeCM, config.BMFDynamic},
		{"cm_sbmf", config.SchemeCM, config.BMFStatic},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	bars := stats.NewBarSeries("Figure 9: CM with DBMF/SBMF vs SP baselines, normalized to BBB", names...)
	bars.SetUnit("x")
	out := map[string]map[string]float64{}
	for _, p := range profs {
		base, err := o.run(o.Cfg.WithScheme(config.SchemeBBB), p)
		if err != nil {
			return nil, nil, err
		}
		row := map[string]float64{}
		vals := make([]float64, 0, len(variants))
		for _, v := range variants {
			cfg := o.Cfg.WithScheme(v.scheme)
			cfg.BMFMode = v.bmf
			res, err := o.run(cfg, p)
			if err != nil {
				return nil, nil, err
			}
			ratio := float64(res.Cycles) / float64(base.Cycles)
			row[v.name] = ratio
			vals = append(vals, ratio)
		}
		out[p.Name] = row
		bars.Add(p.Name, vals...)
	}
	return out, bars, nil
}

// StatsReport regenerates the Section VI.B statistics: per-benchmark
// PPTI, NWPE, baseline IPC, and the paper's analytical IPC estimate for
// the NoGap model (IPC ~= 1000 / (320*PPTI/NWPE + 40*PPTI)) against the
// simulated NoGap IPC.
func StatsReport(o Options) (*stats.Table, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Section VI.B statistics (per benchmark)",
		"Benchmark", "PPTI", "NWPE", "BBB IPC", "NoGap IPC", "Analytical IPC")
	for _, p := range profs {
		base, err := o.run(o.Cfg.WithScheme(config.SchemeBBB), p)
		if err != nil {
			return nil, err
		}
		ng, err := o.run(o.Cfg.WithScheme(config.SchemeNoGap), p)
		if err != nil {
			return nil, err
		}
		bmtLat := float64(o.Cfg.BMTLevels) * float64(o.Cfg.MACLatency)
		analytical := 1000 / (bmtLat*ng.PPTI/ng.NWPE + float64(o.Cfg.MACLatency)*ng.PPTI)
		tab.AddRowStrings(p.Name,
			fmt.Sprintf("%.1f", ng.PPTI),
			fmt.Sprintf("%.1f", ng.NWPE),
			fmt.Sprintf("%.2f", base.IPC),
			fmt.Sprintf("%.2f", ng.IPC),
			fmt.Sprintf("%.2f", analytical))
	}
	return tab, nil
}
