// Package harness regenerates every table and figure of the paper's
// evaluation (Section VI) from the simulator: Table IV (scheme
// slowdowns), Figure 6 (per-benchmark execution time), Table V (battery
// estimates), Table VI (battery vs SecPB size), Figure 7 (execution
// time vs SecPB size under CM), Figure 8 (BMT root-update reduction),
// Figure 9 (BMF height study), and the Section VI.B statistics report
// (PPTI / NWPE / analytical IPC cross-check).
//
// Each experiment returns both raw numbers (for tests and downstream
// tooling) and a rendered plain-text artifact in the paper's format.
package harness

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"

	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/runner"
	"secpb/internal/stats"
	"secpb/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Ops is the number of memory operations simulated per benchmark
	// per configuration.
	Ops uint64
	// Cfg is the base system configuration (scheme/size fields are
	// overridden per experiment).
	Cfg config.Config
	// Benchmarks optionally restricts the benchmark set (default all).
	Benchmarks []string
	// Progress, if non-nil, receives a line per completed simulation.
	// It may be called from multiple goroutines but never concurrently;
	// the harness serializes calls.
	Progress func(msg string)
	// Parallelism bounds the number of concurrent simulations per
	// experiment. 0 means runner.DefaultWorkers() (GOMAXPROCS); 1 runs
	// strictly serially. Every simulation is independent and results are
	// reassembled in input order, so artifacts are byte-identical at any
	// parallelism.
	Parallelism int
	// Ctx, if non-nil, cancels in-flight experiments (default
	// context.Background()).
	Ctx context.Context
	// Memo, if non-nil, caches simulation results by cell content (the
	// full configuration, the benchmark profile, and the op count).
	// Experiment grids overlap heavily — Table IV and Figure 6 share an
	// identical grid, and the size sweeps re-run the default size — so a
	// shared memo simulates each unique cell exactly once per process.
	// Because a simulation is a deterministic pure function of the cell
	// key, memoized artifacts are byte-identical to recomputed ones;
	// concurrent duplicates collapse to a single simulation at any
	// Parallelism setting.
	Memo *CellMemo
	// Battery, if non-nil, caches multicore battery-grid cells the
	// same way Memo caches single-core simulation cells (the key
	// already covers scheme and core count via the config hash).
	Battery *BatteryMemo
	// TraceDir, if set, replays each benchmark's recorded trace from
	// <TraceDir>/<name>.spb2 instead of generating the stream live.
	// A trace recorded with RecordTraces at the same (seed, ops) is
	// op-identical to the live generator, so results and artifacts are
	// byte-identical either way (the replay-identity ci.sh gate); a
	// trace recorded with different parameters simulates whatever it
	// holds and the artifacts will differ. Memo keys are unchanged —
	// replayed and generated cells are interchangeable.
	TraceDir string
}

// CellMemo is the result cache shared across experiments; see
// Options.Memo.
type CellMemo = runner.Memo[CellKey, engine.Result]

// NewCellMemo returns an empty experiment-cell cache.
func NewCellMemo() *CellMemo { return runner.NewMemo[CellKey, engine.Result]() }

// BatteryMemo caches multicore battery-sizing cells; see
// Options.Battery.
type BatteryMemo = runner.Memo[CellKey, BatteryCell]

// NewBatteryMemo returns an empty battery-cell cache.
func NewBatteryMemo() *BatteryMemo { return runner.NewMemo[CellKey, BatteryCell]() }

// CellKey identifies one simulation cell by content.
type CellKey [sha256.Size]byte

// cellKey canonically hashes everything a simulation's result depends
// on: the complete configuration and profile (flat structs of scalars,
// rendered field-by-field via %#v) and the op count. Two cells with
// equal keys run identical simulations.
func cellKey(cfg config.Config, prof workload.Profile, ops uint64) CellKey {
	h := sha256.New()
	fmt.Fprintf(h, "%#v|%#v|%d", cfg, prof, ops)
	return CellKey(h.Sum(nil))
}

// DefaultOptions returns the standard experiment setup.
func DefaultOptions() Options {
	return Options{Ops: 100_000, Cfg: config.Default()}
}

func (o *Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

func profileByName(name string) (workload.Profile, error) {
	return workload.ByName(name)
}

func (o *Options) profiles() ([]workload.Profile, error) {
	if len(o.Benchmarks) == 0 {
		return workload.Profiles(), nil
	}
	var ps []workload.Profile
	for _, name := range o.Benchmarks {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// run simulates one (benchmark, config) pair, consulting the memo when
// one is configured. Progress is emitted for cache hits too, so the
// progress stream (like the artifacts) is identical with and without
// memoization.
func (o *Options) run(cfg config.Config, prof workload.Profile) (engine.Result, error) {
	var res engine.Result
	var err error
	sim := func() (engine.Result, error) {
		if o.TraceDir != "" {
			return o.runRecorded(cfg, prof)
		}
		return engine.RunBenchmark(cfg, prof, o.Ops)
	}
	if o.Memo != nil {
		res, _, err = o.Memo.Do(cellKey(cfg, prof, o.Ops), sim)
	} else {
		res, err = sim()
	}
	if err != nil {
		return res, fmt.Errorf("harness: %s/%v: %w", prof.Name, cfg.Scheme, err)
	}
	o.progress("%s", res)
	return res, nil
}

// simJob is one (config, benchmark) cell of an experiment grid.
type simJob struct {
	cfg  config.Config
	prof workload.Profile
}

// runAll simulates every job with the configured parallelism and returns
// results in input order. Each job builds its own engine, controller and
// crypto state, so jobs share nothing; the progress callback is the only
// shared sink and is serialized here.
func (o *Options) runAll(jobs []simJob) ([]engine.Result, error) {
	po := *o
	if o.Progress != nil {
		var mu sync.Mutex
		orig := o.Progress
		po.Progress = func(msg string) {
			mu.Lock()
			defer mu.Unlock()
			orig(msg)
		}
	}
	return runner.Map(o.Ctx, o.Parallelism, jobs,
		func(_ context.Context, _ int, j simJob) (engine.Result, error) {
			return po.run(j.cfg, j.prof)
		})
}

// SlowdownGrid holds normalized execution times: Ratio[bench][scheme].
type SlowdownGrid struct {
	Schemes []config.Scheme
	Benches []string
	Ratio   map[string]map[config.Scheme]float64
	// Mean is the geometric-mean slowdown per scheme — the "average"
	// of the paper's Table IV.
	Mean map[config.Scheme]float64
}

// slowdowns runs every benchmark under baseline BBB plus the given
// schemes at the given SecPB size, returning normalized execution time.
// The (benchmark x scheme) grid fans out over the configured
// parallelism; ratios and geomeans are reassembled in input order, so
// the grid is identical at any parallelism.
func (o *Options) slowdowns(schemes []config.Scheme, entries int) (*SlowdownGrid, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, err
	}
	// One BBB baseline plus every scheme, per benchmark.
	perProf := 1 + len(schemes)
	jobs := make([]simJob, 0, len(profs)*perProf)
	for _, p := range profs {
		jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeBBB).WithSecPBEntries(entries), p})
		for _, s := range schemes {
			jobs = append(jobs, simJob{o.Cfg.WithScheme(s).WithSecPBEntries(entries), p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	grid := &SlowdownGrid{
		Schemes: schemes,
		Ratio:   map[string]map[config.Scheme]float64{},
		Mean:    map[config.Scheme]float64{},
	}
	geo := map[config.Scheme]*stats.GeoMean{}
	for _, s := range schemes {
		geo[s] = &stats.GeoMean{}
	}
	for pi, p := range profs {
		grid.Benches = append(grid.Benches, p.Name)
		base := results[pi*perProf]
		row := map[config.Scheme]float64{}
		for si, s := range schemes {
			res := results[pi*perProf+1+si]
			ratio := float64(res.Cycles) / float64(base.Cycles)
			row[s] = ratio
			if err := geo[s].Add(ratio); err != nil {
				return nil, err
			}
		}
		grid.Ratio[p.Name] = row
	}
	for _, s := range schemes {
		grid.Mean[s] = geo[s].Value()
	}
	return grid, nil
}

// Table4 regenerates Table IV: mean slowdown per scheme with the
// default 32-entry SecPB, normalized to the insecure BBB baseline.
func Table4(o Options) (*SlowdownGrid, *stats.Table, error) {
	grid, err := o.slowdowns(config.SecPBSchemes(), o.Cfg.SecPBEntries)
	if err != nil {
		return nil, nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("Table IV: performance overheads, %d-entry SecPB (vs insecure BBB)", o.Cfg.SecPBEntries),
		"Model", "Slowdown")
	// Present laziest-first like the paper.
	order := []config.Scheme{
		config.SchemeCOBCM, config.SchemeOBCM, config.SchemeBCM,
		config.SchemeCM, config.SchemeM, config.SchemeNoGap,
	}
	for _, s := range order {
		tab.AddRowStrings(s.String(), stats.Percent(grid.Mean[s]))
	}
	return grid, tab, nil
}

// Figure6 regenerates Figure 6: per-benchmark execution time of every
// scheme normalized to BBB.
func Figure6(o Options) (*SlowdownGrid, *stats.BarSeries, error) {
	grid, err := o.slowdowns(config.SecPBSchemes(), o.Cfg.SecPBEntries)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(grid.Schemes))
	for i, s := range grid.Schemes {
		names[i] = s.String()
	}
	bars := stats.NewBarSeries(
		fmt.Sprintf("Figure 6: execution time, %d-entry SecPB, normalized to BBB", o.Cfg.SecPBEntries),
		names...)
	bars.SetUnit("x")
	for _, b := range grid.Benches {
		vals := make([]float64, len(grid.Schemes))
		for i, s := range grid.Schemes {
			vals[i] = grid.Ratio[b][s]
		}
		bars.Add(b, vals...)
	}
	return grid, bars, nil
}

// Table5 regenerates Table V: energy-source size estimates per scheme
// plus the s_eADR / BBB / eADR comparators.
func Table5(cfg config.Config) ([]energy.Estimate, *stats.Table, error) {
	rows, err := energy.Table5(cfg)
	if err != nil {
		return nil, nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("Table V: energy source size, %d-entry SecPB (per core)", cfg.SecPBEntries),
		"System", "SuperCap mm3", "Li-Thin mm3", "SuperCap %core", "Li-Thin %core")
	for _, r := range rows {
		tab.AddRowStrings(r.Name,
			fmt.Sprintf("%.2f", r.SuperCapMM3),
			fmt.Sprintf("%.3f", r.LiThinMM3),
			fmt.Sprintf("%.1f%%", r.SuperCapPct),
			fmt.Sprintf("%.1f%%", r.LiThinPct))
	}
	return rows, tab, nil
}

// Table6Sizes is the paper's Table VI size sweep.
var Table6Sizes = []int{8, 16, 32, 64, 128, 256, 512}

// Table6 regenerates Table VI: battery capacity versus SecPB size for
// the COBCM and NoGap models.
func Table6(cfg config.Config) (*stats.Table, error) {
	cobcm, nogap, err := energy.Table6(cfg, Table6Sizes)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Table VI: battery capacity vs SecPB size (SuperCap / Li-Thin mm3)",
		"Size", "COBCM SuperCap", "COBCM Li-Thin", "NoGap SuperCap", "NoGap Li-Thin")
	for i, n := range Table6Sizes {
		tab.AddRowStrings(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", cobcm[i].SuperCapMM3),
			fmt.Sprintf("%.3f", cobcm[i].LiThinMM3),
			fmt.Sprintf("%.2f", nogap[i].SuperCapMM3),
			fmt.Sprintf("%.3f", nogap[i].LiThinMM3))
	}
	return tab, nil
}

// Figure7Sizes is the paper's Figure 7 size sweep.
var Figure7Sizes = []int{8, 16, 32, 64, 128, 512}

// Figure7 regenerates Figure 7: execution time of the CM model across
// SecPB sizes, normalized to BBB at the same size.
func Figure7(o Options) (map[int]map[string]float64, *stats.BarSeries, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(Figure7Sizes))
	for i, n := range Figure7Sizes {
		names[i] = fmt.Sprintf("%d-entry", n)
	}
	bars := stats.NewBarSeries("Figure 7: execution time of CM across SecPB sizes, normalized to BBB", names...)
	bars.SetUnit("x")
	out := map[int]map[string]float64{}
	for _, n := range Figure7Sizes {
		out[n] = map[string]float64{}
	}
	// Per benchmark: a (BBB, CM) pair at every size.
	perProf := 2 * len(Figure7Sizes)
	jobs := make([]simJob, 0, len(profs)*perProf)
	for _, p := range profs {
		for _, n := range Figure7Sizes {
			jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeBBB).WithSecPBEntries(n), p})
			jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeCM).WithSecPBEntries(n), p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}
	for pi, p := range profs {
		vals := make([]float64, 0, len(Figure7Sizes))
		for ni, n := range Figure7Sizes {
			base := results[pi*perProf+2*ni]
			res := results[pi*perProf+2*ni+1]
			ratio := float64(res.Cycles) / float64(base.Cycles)
			out[n][p.Name] = ratio
			vals = append(vals, ratio)
		}
		bars.Add(p.Name, vals...)
	}
	return out, bars, nil
}

// Figure8 regenerates Figure 8: total BMT root updates per scheme and
// per CM SecPB size, normalized to sec_wt (the per-store write-through
// count, i.e. the SP baseline's one update per store).
func Figure8(o Options) (map[string]map[string]float64, *stats.Table, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	out := map[string]map[string]float64{}
	cols := []string{}
	for _, s := range config.SecPBSchemes() {
		cols = append(cols, s.String()+"-32")
	}
	for _, n := range Figure7Sizes {
		cols = append(cols, fmt.Sprintf("cm-%d", n))
	}
	tab := stats.NewTable("Figure 8: BMT root updates normalized to sec_wt (1 update per store)",
		append([]string{"Benchmark"}, cols...)...)
	// Per benchmark: every scheme at the default size, then CM per size.
	perProf := len(config.SecPBSchemes()) + len(Figure7Sizes)
	jobs := make([]simJob, 0, len(profs)*perProf)
	for _, p := range profs {
		for _, s := range config.SecPBSchemes() {
			jobs = append(jobs, simJob{o.Cfg.WithScheme(s), p})
		}
		for _, n := range Figure7Sizes {
			jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeCM).WithSecPBEntries(n), p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}
	for pi, p := range profs {
		row := map[string]float64{}
		cells := []string{p.Name}
		for si, s := range config.SecPBSchemes() {
			res := results[pi*perProf+si]
			frac := float64(res.BMTRootUpdates) / float64(res.Stores)
			row[s.String()+"-32"] = frac
			cells = append(cells, fmt.Sprintf("%.1f%%", frac*100))
		}
		for ni, n := range Figure7Sizes {
			res := results[pi*perProf+len(config.SecPBSchemes())+ni]
			frac := float64(res.BMTRootUpdates) / float64(res.Stores)
			row[fmt.Sprintf("cm-%d", n)] = frac
			cells = append(cells, fmt.Sprintf("%.1f%%", frac*100))
		}
		out[p.Name] = row
		tab.AddRowStrings(cells...)
	}
	return out, tab, nil
}

// Figure9 regenerates Figure 9: the BMT height study — CM with DBMF and
// SBMF versus the SP baseline with the same forests, normalized to BBB.
func Figure9(o Options) (map[string]map[string]float64, *stats.BarSeries, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	type variant struct {
		name   string
		scheme config.Scheme
		bmf    config.BMFMode
	}
	variants := []variant{
		{"sp_dbmf", config.SchemeSP, config.BMFDynamic},
		{"sp_sbmf", config.SchemeSP, config.BMFStatic},
		{"cm_dbmf", config.SchemeCM, config.BMFDynamic},
		{"cm_sbmf", config.SchemeCM, config.BMFStatic},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	bars := stats.NewBarSeries("Figure 9: CM with DBMF/SBMF vs SP baselines, normalized to BBB", names...)
	bars.SetUnit("x")
	out := map[string]map[string]float64{}
	// Per benchmark: a BBB baseline plus every forest variant.
	perProf := 1 + len(variants)
	jobs := make([]simJob, 0, len(profs)*perProf)
	for _, p := range profs {
		jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeBBB), p})
		for _, v := range variants {
			cfg := o.Cfg.WithScheme(v.scheme)
			cfg.BMFMode = v.bmf
			jobs = append(jobs, simJob{cfg, p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}
	for pi, p := range profs {
		base := results[pi*perProf]
		row := map[string]float64{}
		vals := make([]float64, 0, len(variants))
		for vi, v := range variants {
			res := results[pi*perProf+1+vi]
			ratio := float64(res.Cycles) / float64(base.Cycles)
			row[v.name] = ratio
			vals = append(vals, ratio)
		}
		out[p.Name] = row
		bars.Add(p.Name, vals...)
	}
	return out, bars, nil
}

// StatsReport regenerates the Section VI.B statistics: per-benchmark
// PPTI, NWPE, baseline IPC, and the paper's analytical IPC estimate for
// the NoGap model (IPC ~= 1000 / (320*PPTI/NWPE + 40*PPTI)) against the
// simulated NoGap IPC.
func StatsReport(o Options) (*stats.Table, error) {
	profs, err := o.profiles()
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Section VI.B statistics (per benchmark)",
		"Benchmark", "PPTI", "NWPE", "BBB IPC", "NoGap IPC", "Analytical IPC")
	jobs := make([]simJob, 0, 2*len(profs))
	for _, p := range profs {
		jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeBBB), p})
		jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeNoGap), p})
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	for pi, p := range profs {
		base, ng := results[2*pi], results[2*pi+1]
		bmtLat := float64(o.Cfg.BMTLevels) * float64(o.Cfg.MACLatency)
		analytical := 1000 / (bmtLat*ng.PPTI/ng.NWPE + float64(o.Cfg.MACLatency)*ng.PPTI)
		tab.AddRowStrings(p.Name,
			fmt.Sprintf("%.1f", ng.PPTI),
			fmt.Sprintf("%.1f", ng.NWPE),
			fmt.Sprintf("%.2f", base.IPC),
			fmt.Sprintf("%.2f", ng.IPC),
			fmt.Sprintf("%.2f", analytical))
	}
	return tab, nil
}
