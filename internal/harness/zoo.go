// The zoo experiment and trace recording/replay: secpb-bench -exp zoo
// runs the workload zoo (application-class + adversarial generators)
// across the SecPB schemes, and RecordTraces / Options.TraceDir close
// the record→replay loop — a grid replayed from SPB2 files is
// byte-identical to one driven by the live generators.
package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/stats"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// runRecorded replays one cell from the recorded trace file for its
// benchmark. The simulation is identical to the live-generator path
// when the trace was recorded at the same (cfg.Seed, Ops).
func (o *Options) runRecorded(cfg config.Config, prof workload.Profile) (engine.Result, error) {
	src, err := trace.OpenFile(filepath.Join(o.TraceDir, prof.Name+".spb2"))
	if err != nil {
		return engine.Result{}, fmt.Errorf("harness: opening recorded trace: %w", err)
	}
	defer src.Close()
	return engine.RunRecorded(cfg, prof, src)
}

// RecordTraces streams each named benchmark's generator to
// <dir>/<name>.spb2 in the SPB2 format, using the same (seed, ops)
// contract as engine.RunBenchmark — cfg.Seed and Options.Ops — so the
// files replay byte-identically through Options.TraceDir. Writes are
// atomic (temp file + rename), mirroring the cell cache's discipline.
func RecordTraces(dir string, names []string, seed, ops uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		prof, err := workload.ByName(name)
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(prof, seed, ops)
		if err != nil {
			return err
		}
		if err := recordOne(dir, name, gen); err != nil {
			return fmt.Errorf("harness: recording %s: %w", name, err)
		}
	}
	return nil
}

func recordOne(dir, name string, gen *workload.Generator) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	sw := trace.NewSegWriter(tmp, 0)
	b := trace.NewBatch(trace.DefaultBatchCap)
	for gen.NextBatch(b) {
		if err := sw.WriteBatch(b); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := sw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name+".spb2"))
}

// ZooRow is one workload's line of the zoo report: its stream
// statistics and stress profile under COBCM, plus per-scheme slowdowns
// against the insecure BBB baseline.
type ZooRow struct {
	Bench string
	// Stream statistics from the COBCM run.
	PPTI    float64
	NWPE    float64
	PeakOcc int
	// BPFrac is the fraction of cycles spent backpressured on a full
	// SecPB — the occupancy attack's signature.
	BPFrac float64
	// Slowdown is normalized execution time per scheme (vs BBB).
	Slowdown map[config.Scheme]float64
}

// zooSchemes is the scheme set the zoo grid sweeps, laziest-first like
// Table IV.
func zooSchemes() []config.Scheme {
	return []config.Scheme{
		config.SchemeCOBCM, config.SchemeOBCM, config.SchemeBCM,
		config.SchemeCM, config.SchemeM, config.SchemeNoGap,
	}
}

// Zoo runs the workload zoo across the SecPB schemes. Options.Benchmarks
// restricts the set (names resolve through the zoo too); the default is
// every zoo profile. The grid fans out over Options.Parallelism and is
// reassembled in input order, so the artifact is byte-identical at any
// parallelism, memoization, or TraceDir-replay setting.
func Zoo(o Options) ([]ZooRow, *stats.Table, error) {
	names := o.Benchmarks
	if len(names) == 0 {
		names = workload.ZooNames()
	}
	profs := make([]workload.Profile, len(names))
	for i, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		profs[i] = p
	}
	schemes := zooSchemes()
	// Per workload: one BBB baseline, then every scheme.
	perProf := 1 + len(schemes)
	jobs := make([]simJob, 0, len(profs)*perProf)
	for _, p := range profs {
		jobs = append(jobs, simJob{o.Cfg.WithScheme(config.SchemeBBB), p})
		for _, s := range schemes {
			jobs = append(jobs, simJob{o.Cfg.WithScheme(s), p})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}

	cols := []string{"Workload", "PPTI", "NWPE", "PeakOcc", "BP%"}
	for _, s := range schemes {
		cols = append(cols, s.String())
	}
	tab := stats.NewTable(
		fmt.Sprintf("Workload zoo: stream stats (COBCM) and slowdowns vs BBB, %d-entry SecPB",
			o.Cfg.SecPBEntries),
		cols...)
	rows := make([]ZooRow, 0, len(profs))
	for pi, p := range profs {
		base := results[pi*perProf]
		row := ZooRow{Bench: p.Name, Slowdown: map[config.Scheme]float64{}}
		cells := []string{p.Name}
		for si, s := range schemes {
			res := results[pi*perProf+1+si]
			row.Slowdown[s] = float64(res.Cycles) / float64(base.Cycles)
			if s == config.SchemeCOBCM {
				row.PPTI = res.PPTI
				row.NWPE = res.NWPE
				row.PeakOcc = res.PeakOccupancy
				row.BPFrac = float64(res.Backpressure) / float64(res.Cycles)
			}
		}
		cells = append(cells,
			fmt.Sprintf("%.1f", row.PPTI),
			fmt.Sprintf("%.1f", row.NWPE),
			fmt.Sprintf("%d", row.PeakOcc),
			fmt.Sprintf("%.1f%%", row.BPFrac*100))
		for _, s := range schemes {
			cells = append(cells, stats.Percent(row.Slowdown[s]))
		}
		tab.AddRowStrings(cells...)
		rows = append(rows, row)
	}
	return rows, tab, nil
}
