package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/runner"
	"secpb/internal/stats"
)

// BatteryCell is one scheme × core-count cell of the multi-core
// battery-sizing grid: the worst-case (all-slots-full) drain energy the
// battery must be provisioned for, against the measured high-water
// occupancy the simulation actually reached.
type BatteryCell struct {
	Scheme string `json:"scheme"`
	Cores  int    `json:"cores"`

	// WorstCaseJ funds every battery-backed buffer at capacity: the N
	// private SecPBs, plus the N shared-region SecPBs the coherence
	// domain adds when N > 1.
	WorstCaseJ float64 `json:"worst_case_j"`
	// MeasuredJ funds the measured peak: per-entry drain energy times
	// the socket-wide high-water occupancy (summed per-core peaks,
	// private + shared — conservative, since peaks need not coincide).
	MeasuredJ   float64 `json:"measured_peak_j"`
	PeakEntries int     `json:"peak_entries"`

	// Battery volume for the worst case (both technologies).
	SuperCapMM3 float64 `json:"supercap_mm3"`
	LiThinMM3   float64 `json:"lithin_mm3"`

	// Throughput and coherence activity of the measuring run.
	AggIPC      float64 `json:"agg_ipc"`
	Migrations  uint64  `json:"migrations"`
	ReadFlushes uint64  `json:"read_flushes"`
}

// BatteryGrid is the scheme × core-count battery-sizing artifact
// (the paper's Table VI arithmetic scaled out to multi-core sockets).
type BatteryGrid struct {
	Benchmark string        `json:"benchmark"`
	Ops       uint64        `json:"ops_per_core"`
	Cores     []int         `json:"core_counts"`
	Cells     []BatteryCell `json:"cells"`
}

// WriteJSON emits the artifact deterministically (grid order).
func (g *BatteryGrid) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Render writes the human-readable battery-sizing table.
func (g *BatteryGrid) Render() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Battery sizing × core count (%s, %d ops/core)", g.Benchmark, g.Ops),
		"scheme", "cores", "worst-case J", "measured J", "peak entries", "supercap mm3", "li-thin mm3", "agg IPC")
	for i := range g.Cells {
		c := &g.Cells[i]
		t.AddRow(c.Scheme, c.Cores, c.WorstCaseJ, c.MeasuredJ, c.PeakEntries, c.SuperCapMM3, c.LiThinMM3, c.AggIPC)
	}
	return t
}

// batteryBuffers returns how many battery-backed SecPBs an n-core
// socket holds: n private buffers, plus n shared-region buffers once
// the coherence domain is engaged (n > 1).
func batteryBuffers(n int) int {
	if n <= 1 {
		return 1
	}
	return 2 * n
}

// MulticoreBattery runs the scheme × core-count grid: each cell
// simulates an n-core socket end to end (per-core SecPBs, MESI shared
// region, epoch-merged stepping), measures the socket's peak occupancy,
// and sizes the battery both ways. Cells fan out over the worker pool;
// results are reassembled in grid order, so the artifact is
// byte-identical at any Parallelism.
func MulticoreBattery(o Options, coreCounts []int) (*BatteryGrid, *stats.Table, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 8, 64, 256}
	}
	profs, err := o.profiles()
	if err != nil {
		return nil, nil, err
	}
	prof := profs[0]
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}

	type cellJob struct {
		scheme config.Scheme
		cores  int
	}
	var jobs []cellJob
	for _, s := range config.SecPBSchemes() {
		for _, n := range coreCounts {
			jobs = append(jobs, cellJob{s, n})
		}
	}
	var progressMu sync.Mutex
	cells, err := runner.Map(o.Ctx, o.Parallelism, jobs, func(_ context.Context, _ int, j cellJob) (BatteryCell, error) {
		cfg := o.Cfg.WithScheme(j.scheme).WithCores(j.cores)
		compute := func() (BatteryCell, error) {
			res, err := engine.RunSystem(cfg, prof, o.Ops)
			if err != nil {
				return BatteryCell{}, fmt.Errorf("harness: %s x%d: %w", j.scheme, j.cores, err)
			}
			perBufJ, err := energy.SecPBEnergy(j.scheme, cfg.SecPBEntries, cfg.BMTLevels)
			if err != nil {
				return BatteryCell{}, err
			}
			perEntryJ, err := energy.PerEntryDrainJ(j.scheme, cfg.BMTLevels)
			if err != nil {
				return BatteryCell{}, err
			}
			worstJ := float64(batteryBuffers(j.cores)) * perBufJ
			est := energy.EstimateFor(j.scheme.String(), worstJ)
			return BatteryCell{
				Scheme:      j.scheme.String(),
				Cores:       j.cores,
				WorstCaseJ:  worstJ,
				MeasuredJ:   float64(res.PeakOccupancy) * perEntryJ,
				PeakEntries: res.PeakOccupancy,
				SuperCapMM3: est.SuperCapMM3,
				LiThinMM3:   est.LiThinMM3,
				AggIPC:      res.AggIPC,
				Migrations:  res.Migrations,
				ReadFlushes: res.ReadFlushes,
			}, nil
		}
		var cell BatteryCell
		var err error
		if o.Battery != nil {
			// The cell is a pure function of (cfg, profile, ops): cfg
			// already encodes scheme and core count, so the simulation
			// cell key covers the battery arithmetic too.
			cell, _, err = o.Battery.Do(cellKey(cfg, prof, o.Ops), compute)
		} else {
			cell, err = compute()
		}
		if err != nil {
			return BatteryCell{}, err
		}
		progressMu.Lock()
		o.progress("battery %s x%d: peak %d entries, %.3g J worst case",
			j.scheme, j.cores, cell.PeakEntries, cell.WorstCaseJ)
		progressMu.Unlock()
		return cell, nil
	})
	if err != nil {
		return nil, nil, err
	}
	grid := &BatteryGrid{
		Benchmark: prof.Name,
		Ops:       o.Ops,
		Cores:     append([]int(nil), coreCounts...),
		Cells:     cells,
	}
	return grid, grid.Render(), nil
}
