package harness

import (
	"strings"
	"testing"

	"secpb/internal/config"
)

// quickOpts keeps harness tests fast: few benchmarks, short runs.
func quickOpts() Options {
	o := DefaultOptions()
	o.Ops = 8000
	o.Benchmarks = []string{"gamess", "povray", "mcf"}
	return o
}

func TestTable4ShapeAndOrdering(t *testing.T) {
	grid, tab, err := Table4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Errorf("Table IV rows = %d, want 6", tab.NumRows())
	}
	// The fundamental ordering across the design spectrum.
	if !(grid.Mean[config.SchemeCOBCM] <= grid.Mean[config.SchemeOBCM] &&
		grid.Mean[config.SchemeOBCM] <= grid.Mean[config.SchemeBCM] &&
		grid.Mean[config.SchemeBCM] <= grid.Mean[config.SchemeCM] &&
		grid.Mean[config.SchemeCM] <= grid.Mean[config.SchemeM] &&
		grid.Mean[config.SchemeM] <= grid.Mean[config.SchemeNoGap]) {
		t.Errorf("scheme ordering violated: %v", grid.Mean)
	}
	out := tab.String()
	for _, want := range []string{"cobcm", "nogap", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestFigure6PerBenchmark(t *testing.T) {
	grid, bars, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(bars.Labels()) != 3 {
		t.Errorf("Figure 6 labels = %v", bars.Labels())
	}
	// gamess under NoGap must be the extreme point (paper: ~18x).
	g := grid.Ratio["gamess"][config.SchemeNoGap]
	if g < 5 {
		t.Errorf("gamess NoGap ratio = %.1f, expected the extreme benchmark", g)
	}
	if grid.Ratio["gamess"][config.SchemeCOBCM] > 1.5 {
		t.Errorf("gamess COBCM ratio = %.1f, should be near 1", grid.Ratio["gamess"][config.SchemeCOBCM])
	}
}

func TestTable5Render(t *testing.T) {
	rows, tab, err := Table5(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 || tab.NumRows() != 9 {
		t.Errorf("Table V rows = %d/%d", len(rows), tab.NumRows())
	}
	if !strings.Contains(tab.String(), "s_eadr") {
		t.Error("Table V missing s_eadr row")
	}
}

func TestTable6Render(t *testing.T) {
	tab, err := Table6(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(Table6Sizes) {
		t.Errorf("Table VI rows = %d", tab.NumRows())
	}
}

func TestFigure7SizeTrend(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"gobmk"} // the size-sensitive benchmark
	vals, _, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	// gobmk's CM overhead must shrink from 8 to 512 entries (paper:
	// "write-intensive workloads such as gobmk observe continued
	// reduction of performance overheads as the SecPB capacity ...
	// increases").
	if vals[512]["gobmk"] >= vals[8]["gobmk"] {
		t.Errorf("gobmk CM: 512-entry ratio %.2f not below 8-entry %.2f",
			vals[512]["gobmk"], vals[8]["gobmk"])
	}
}

func TestFigure8CoalescingFractions(t *testing.T) {
	o := quickOpts()
	o.Ops = 40000 // large SecPB sizes need enough stores to drain at all
	o.Benchmarks = []string{"povray", "bwaves"}
	vals, tab, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("Figure 8 rows = %d", tab.NumRows())
	}
	// povray coalesces heavily: far fewer root updates than stores.
	if f := vals["povray"]["cm-32"]; f > 0.2 {
		t.Errorf("povray root-update fraction = %.2f, want < 0.2", f)
	}
	// bwaves streams: capacity insensitive (paper's observation).
	small, big := vals["bwaves"]["cm-8"], vals["bwaves"]["cm-512"]
	if small == 0 || big == 0 {
		t.Fatal("bwaves fractions missing")
	}
	if rel := small / big; rel > 1.3 || rel < 0.77 {
		t.Errorf("bwaves root updates vary with capacity: 8-entry %.3f vs 512-entry %.3f", small, big)
	}
	// gobmk-style capacity sensitivity is covered in Figure 7's test.
}

func TestFigure9BMFOrdering(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"povray", "gamess"}
	vals, _, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"povray", "gamess"} {
		row := vals[b]
		// The paper's headline: CM+BMF beats the SP baselines, and the
		// shallower forest (DBMF, height 2) beats SBMF (height 5).
		if row["cm_dbmf"] >= row["sp_dbmf"] {
			t.Errorf("%s: cm_dbmf %.2f not better than sp_dbmf %.2f", b, row["cm_dbmf"], row["sp_dbmf"])
		}
		if row["cm_sbmf"] >= row["sp_sbmf"] {
			t.Errorf("%s: cm_sbmf %.2f not better than sp_sbmf %.2f", b, row["cm_sbmf"], row["sp_sbmf"])
		}
		if row["cm_dbmf"] > row["cm_sbmf"] {
			t.Errorf("%s: cm_dbmf %.2f slower than cm_sbmf %.2f", b, row["cm_dbmf"], row["cm_sbmf"])
		}
	}
}

func TestStatsReport(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"gamess"}
	tab, err := StatsReport(o)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "gamess") || !strings.Contains(out, "PPTI") {
		t.Errorf("stats report malformed:\n%s", out)
	}
}

func TestProgressCallback(t *testing.T) {
	o := quickOpts()
	o.Ops = 2000
	o.Benchmarks = []string{"mcf"}
	var lines int
	o.Progress = func(string) { lines++ }
	if _, _, err := Table4(o); err != nil {
		t.Fatal(err)
	}
	if lines != 7 { // BBB baseline + 6 schemes
		t.Errorf("progress lines = %d, want 7", lines)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"doom"}
	if _, _, err := Table4(o); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAblationTable(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"povray"}
	tab, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "povray") || !strings.Contains(out, "no-coalescing") {
		t.Errorf("ablation table malformed:\n%s", out)
	}
	if tab.NumRows() != 1 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestGapsReport(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"povray"}
	tab, err := GapsReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Errorf("rows = %d, want one per scheme", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "5/5 tuple steps") {
		t.Error("COBCM crash work not reported as all five steps")
	}
}

func TestSensitivity(t *testing.T) {
	o := quickOpts()
	o.Benchmarks = []string{"gamess"}
	tab, err := Sensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 9 {
		t.Errorf("rows = %d, want 9 (3 params x 3 values)", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"MAC/hash latency", "BMT height", "watermark"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
