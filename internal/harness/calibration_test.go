package harness

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/workload"
)

// TestTable4CalibrationBands is the reproduction's regression guard:
// the full 18-benchmark Table IV geomeans must stay inside bands around
// the paper's reported values. If a change to the workload profiles,
// the timing model, or the SecPB pipeline moves a scheme out of its
// band, this test names it. (~40s; skipped with -short.)
func TestTable4CalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run takes ~40s")
	}
	o := DefaultOptions()
	o.Ops = 60_000
	grid, _, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table IV values with reproduction bands. Bands are wider
	// where our model documentedly deviates (see EXPERIMENTS.md): BCM's
	// OTP latency is partially hidden by the store queue; eager schemes
	// run slightly hotter at short horizons (cold caches).
	bands := []struct {
		scheme   config.Scheme
		paper    float64 // paper's slowdown ratio
		min, max float64
	}{
		{config.SchemeCOBCM, 1.013, 1.00, 1.10},
		{config.SchemeOBCM, 1.015, 1.00, 1.12},
		{config.SchemeBCM, 1.148, 1.02, 1.25},
		{config.SchemeCM, 1.713, 1.40, 2.10},
		{config.SchemeM, 1.738, 1.42, 2.15},
		{config.SchemeNoGap, 2.184, 1.80, 2.90},
	}
	for _, b := range bands {
		got := grid.Mean[b.scheme]
		if got < b.min || got > b.max {
			t.Errorf("%v geomean %.3f outside calibration band [%.2f, %.2f] (paper: %.3f)",
				b.scheme, got, b.min, b.max, b.paper)
		}
	}
	// Landmark benchmark: gamess must remain the extreme point under
	// eager schemes, near-baseline under COBCM.
	if g := grid.Ratio["gamess"][config.SchemeCM]; g < 8 {
		t.Errorf("gamess CM = %.1fx, paper reports 18.2x (band: >8x)", g)
	}
	if g := grid.Ratio["gamess"][config.SchemeCOBCM]; g > 1.25 {
		t.Errorf("gamess COBCM = %.2fx, paper reports 1.096x (band: <1.25x)", g)
	}
	// povray: M must be a large improvement over NoGap (paper: 51.6%).
	improve := 1 - grid.Ratio["povray"][config.SchemeM]/grid.Ratio["povray"][config.SchemeNoGap]
	if improve < 0.30 {
		t.Errorf("povray NoGap->M improvement = %.0f%%, paper reports 51.6%%", improve*100)
	}
}

// TestZooCalibrationBands pins the workload zoo's qualitative story:
// the application-class generators behave like write-heavy but sane
// programs (COBCM near baseline, the Table IV lazy→eager ordering
// holds), while the adversarial generators do what they were built for
// (saturate the SecPB, maximize backpressure, defeat coalescing).
// PPTI must track each profile's StoresPerKilo target at the harness
// grid level too, not just in the generator's unit tests. (~15s;
// skipped with -short.)
func TestZooCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo calibration run")
	}
	o := DefaultOptions()
	o.Ops = 20_000
	rows, _, err := Zoo(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ZooRow{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	profs := workload.ZooProfiles()
	for _, p := range profs {
		r, ok := byName[p.Name]
		if !ok {
			t.Fatalf("zoo grid missing %s", p.Name)
		}
		// PPTI within 15% of the profile's calibration target.
		target := float64(p.StoresPerKilo)
		if r.PPTI < target*0.85 || r.PPTI > target*1.15 {
			t.Errorf("%s: PPTI %.1f outside ±15%% of target %.0f", p.Name, r.PPTI, target)
		}
		// Lazy→eager monotonicity (allow small timing noise).
		order := zooSchemes()
		for i := 1; i < len(order); i++ {
			if r.Slowdown[order[i]] < r.Slowdown[order[i-1]]*0.98 {
				t.Errorf("%s: %v slowdown %.3f < %v slowdown %.3f — lazy→eager ordering broken",
					p.Name, order[i], r.Slowdown[order[i]], order[i-1], r.Slowdown[order[i-1]])
			}
		}
	}
	// Application-class workloads: COBCM stays near the BBB baseline
	// and coalescing works (NWPE well above 1).
	for _, name := range []string{"kvstore", "wal", "tenantmix"} {
		r := byName[name]
		if r.Slowdown[config.SchemeCOBCM] > 1.10 {
			t.Errorf("%s: COBCM slowdown %.3f, want near-baseline (<1.10)", name, r.Slowdown[config.SchemeCOBCM])
		}
		if r.NWPE < 2 {
			t.Errorf("%s: NWPE %.2f, want coalescing (>2)", name, r.NWPE)
		}
	}
	// Adversarial generators: SecPB pinned at capacity, heavy
	// backpressure, and coalescing defeated (NWPE ~ 1).
	for _, name := range []string{"adv-occupancy", "adv-bmtblast", "adv-battery"} {
		r := byName[name]
		if r.PeakOcc != o.Cfg.SecPBEntries {
			t.Errorf("%s: peak occupancy %d, want full SecPB (%d)", name, r.PeakOcc, o.Cfg.SecPBEntries)
		}
		if r.BPFrac < 0.5 {
			t.Errorf("%s: backpressure fraction %.2f, want >0.5", name, r.BPFrac)
		}
		if r.NWPE > 1.05 {
			t.Errorf("%s: NWPE %.2f, want ~1 (coalescing defeated)", name, r.NWPE)
		}
	}
	// The battery pessimizer must be the most expensive trace in the
	// zoo even under the laziest scheme — that is its job.
	worst := byName["adv-battery"].Slowdown[config.SchemeCOBCM]
	for _, r := range rows {
		if r.Bench != "adv-battery" && r.Slowdown[config.SchemeCOBCM] > worst {
			t.Errorf("%s COBCM slowdown %.2f exceeds adv-battery's %.2f", r.Bench, r.Slowdown[config.SchemeCOBCM], worst)
		}
	}
	// gcmark is the read-dominated control: even NoGap costs it far
	// less than it costs any write-heavy workload.
	if g := byName["gcmark"].Slowdown[config.SchemeNoGap]; g > 1.25 {
		t.Errorf("gcmark NoGap slowdown %.3f, want <1.25 (read-dominated)", g)
	}
	if gc, kv := byName["gcmark"].Slowdown[config.SchemeNoGap], byName["kvstore"].Slowdown[config.SchemeNoGap]; gc > kv/2 {
		t.Errorf("gcmark NoGap slowdown %.3f not well below kvstore's %.3f", gc, kv)
	}
}
