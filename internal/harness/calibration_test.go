package harness

import (
	"testing"

	"secpb/internal/config"
)

// TestTable4CalibrationBands is the reproduction's regression guard:
// the full 18-benchmark Table IV geomeans must stay inside bands around
// the paper's reported values. If a change to the workload profiles,
// the timing model, or the SecPB pipeline moves a scheme out of its
// band, this test names it. (~40s; skipped with -short.)
func TestTable4CalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run takes ~40s")
	}
	o := DefaultOptions()
	o.Ops = 60_000
	grid, _, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table IV values with reproduction bands. Bands are wider
	// where our model documentedly deviates (see EXPERIMENTS.md): BCM's
	// OTP latency is partially hidden by the store queue; eager schemes
	// run slightly hotter at short horizons (cold caches).
	bands := []struct {
		scheme   config.Scheme
		paper    float64 // paper's slowdown ratio
		min, max float64
	}{
		{config.SchemeCOBCM, 1.013, 1.00, 1.10},
		{config.SchemeOBCM, 1.015, 1.00, 1.12},
		{config.SchemeBCM, 1.148, 1.02, 1.25},
		{config.SchemeCM, 1.713, 1.40, 2.10},
		{config.SchemeM, 1.738, 1.42, 2.15},
		{config.SchemeNoGap, 2.184, 1.80, 2.90},
	}
	for _, b := range bands {
		got := grid.Mean[b.scheme]
		if got < b.min || got > b.max {
			t.Errorf("%v geomean %.3f outside calibration band [%.2f, %.2f] (paper: %.3f)",
				b.scheme, got, b.min, b.max, b.paper)
		}
	}
	// Landmark benchmark: gamess must remain the extreme point under
	// eager schemes, near-baseline under COBCM.
	if g := grid.Ratio["gamess"][config.SchemeCM]; g < 8 {
		t.Errorf("gamess CM = %.1fx, paper reports 18.2x (band: >8x)", g)
	}
	if g := grid.Ratio["gamess"][config.SchemeCOBCM]; g > 1.25 {
		t.Errorf("gamess COBCM = %.2fx, paper reports 1.096x (band: <1.25x)", g)
	}
	// povray: M must be a large improvement over NoGap (paper: 51.6%).
	improve := 1 - grid.Ratio["povray"][config.SchemeM]/grid.Ratio["povray"][config.SchemeNoGap]
	if improve < 0.30 {
		t.Errorf("povray NoGap->M improvement = %.0f%%, paper reports 51.6%%", improve*100)
	}
}
