package harness

import (
	"strings"
	"testing"

	"secpb/internal/config"
	"secpb/internal/workload"
)

// TestCellMemoDeterminism is the memoization guarantee: the same
// experiments run with the cell cache on and off — serially and in
// parallel — render byte-identical artifacts, because a simulation is a
// pure function of its cell key and replaying a cached result is
// indistinguishable from recomputing it.
func TestCellMemoDeterminism(t *testing.T) {
	base := DefaultOptions()
	base.Ops = 4000
	base.Benchmarks = []string{"gamess", "mcf"}

	render := func(o Options) string {
		var sb strings.Builder
		_, t4, err := Table4(o)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(t4.String())
		// Figure 6's grid is identical to Table IV's — with the memo on
		// it must be a pure cache replay, and render identically.
		_, f6, err := Figure6(o)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(f6.String())
		_, f7, err := Figure7(o)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(f7.String())
		return sb.String()
	}

	plain := base
	want := render(plain)

	memoSerial := base
	memoSerial.Memo = NewCellMemo()
	memoSerial.Parallelism = 1
	if got := render(memoSerial); got != want {
		t.Errorf("memoized serial artifacts differ from unmemoized:\nwant:\n%s\ngot:\n%s", want, got)
	}
	hits, misses := memoSerial.Memo.Stats()
	if hits == 0 {
		t.Error("Table IV + Figure 6 share an identical grid, yet the memo saw no hits")
	}
	if misses == 0 {
		t.Error("memo recorded no misses")
	}

	memoWide := base
	memoWide.Memo = NewCellMemo()
	memoWide.Parallelism = 8
	if got := render(memoWide); got != want {
		t.Errorf("memoized parallel artifacts differ from unmemoized")
	}
	// Concurrent duplicates must collapse: both runs simulate the same
	// unique cell set regardless of worker count.
	_, wideMisses := memoWide.Memo.Stats()
	if wideMisses != misses {
		t.Errorf("unique cells simulated: parallel %d != serial %d", wideMisses, misses)
	}
}

// TestCellKeySensitivity checks the key covers everything a result
// depends on: any change to config, profile, or op count must change
// the key, and equal cells must collide.
func TestCellKeySensitivity(t *testing.T) {
	cfg := config.Default()
	prof, err := workload.ByName("gamess")
	if err != nil {
		t.Fatal(err)
	}
	k := cellKey(cfg, prof, 1000)
	if k != cellKey(cfg, prof, 1000) {
		t.Error("identical cells produced different keys")
	}
	if k == cellKey(cfg, prof, 1001) {
		t.Error("op count not covered by the cell key")
	}
	if k == cellKey(cfg.WithScheme(config.SchemeCM), prof, 1000) {
		t.Error("scheme not covered by the cell key")
	}
	if k == cellKey(cfg.WithSecPBEntries(cfg.SecPBEntries*2), prof, 1000) {
		t.Error("SecPB size not covered by the cell key")
	}
	other, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if k == cellKey(cfg, other, 1000) {
		t.Error("benchmark profile not covered by the cell key")
	}
}
