package harness

import (
	"runtime"
	"testing"

	"secpb/internal/bmt"
	"secpb/internal/crypto"
)

// TestArtifactIdentityParallelSweep pins the paper artifacts across the
// parallel data plane's tuning space: the rendered Table IV and
// Figure 6 must be byte-identical whether the BMT sweep runs serially
// or partitioned over 4 or 8 workers, and whether MACs hash on the
// scalar fast path or the interleaved lanes. GOMAXPROCS is forced to 2
// so the parallel paths actually engage on single-CPU CI hosts.
func TestArtifactIdentityParallelSweep(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	defer bmt.SetDefaultSweepWorkers(0)
	defer crypto.SetDefaultLanes(0)

	o := DefaultOptions()
	o.Ops = 4000
	o.Benchmarks = []string{"gamess", "mcf"}
	o.Parallelism = 1

	render := func(sweepWorkers, lanes int) string {
		bmt.SetDefaultSweepWorkers(sweepWorkers)
		crypto.SetDefaultLanes(lanes)
		_, tab, err := Table4(o)
		if err != nil {
			t.Fatal(err)
		}
		_, bars, err := Figure6(o)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String() + "\n" + bars.String()
	}

	base := render(1, 1) // fully serial, scalar hashing
	for _, w := range []int{4, 8} {
		if got := render(w, 0); got != base {
			t.Errorf("artifacts differ with %d sweep workers (auto lanes):\nserial:\n%s\nparallel:\n%s", w, base, got)
		}
	}
	for _, lanes := range []int{2, 4} {
		if got := render(1, lanes); got != base {
			t.Errorf("artifacts differ with %d MAC lanes:\nscalar:\n%s\nlanes:\n%s", lanes, base, got)
		}
	}
	if got := render(8, 4); got != base {
		t.Error("artifacts differ with sweep workers 8 + 4 MAC lanes vs fully serial")
	}
}
