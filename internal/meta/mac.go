package meta

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/crypto"
	"secpb/internal/ptable"
)

// MACStore holds the per-block authentication tags persisted in PM.
// Tags are stored at full width (the SecPB entry's 512-bit M field);
// eight truncated tags share a 64B MAC line for cache/traffic
// accounting. Block indices are dense, so tags live in a paged
// direct-index table (presence in the table means the block was MAC'd).
type MACStore struct {
	tags *ptable.Table[[crypto.MACSize]byte]
}

// NewMACStore returns an empty store.
func NewMACStore() *MACStore {
	return &MACStore{tags: ptable.New[[crypto.MACSize]byte]()}
}

// Put stores the tag for a block.
func (ms *MACStore) Put(b addr.Block, tag [crypto.MACSize]byte) {
	ms.tags.Put(b.Index(), tag)
}

// PutSlot returns the block's tag cell (creating it), so a batched MAC
// computation can write the tag in place instead of through a 64-byte
// value copy. The pointer stays valid for the store's lifetime.
func (ms *MACStore) PutSlot(b addr.Block) *[crypto.MACSize]byte {
	t, _ := ms.tags.GetOrCreate(b.Index())
	return t
}

// Get returns the stored tag; ok is false if the block was never MAC'd.
func (ms *MACStore) Get(b addr.Block) (tag [crypto.MACSize]byte, ok bool) {
	if t := ms.tags.Lookup(b.Index()); t != nil {
		return *t, true
	}
	return tag, false
}

// Verify recomputes nothing — it compares the stored tag with an
// expected tag computed by the caller's crypto engine and returns an
// error naming the block on mismatch.
func (ms *MACStore) Verify(b addr.Block, want [crypto.MACSize]byte) error {
	t := ms.tags.Lookup(b.Index())
	if t == nil {
		return fmt.Errorf("meta: block %#x has no MAC", b.Addr())
	}
	if *t != want {
		return fmt.Errorf("meta: MAC mismatch for block %#x", b.Addr())
	}
	return nil
}

// Len returns the number of blocks with tags.
func (ms *MACStore) Len() int { return ms.tags.Len() }

// Snapshot deep-copies the store.
func (ms *MACStore) Snapshot() *MACStore {
	return &MACStore{tags: ms.tags.Clone()}
}

// Tamper flips one bit in a stored tag (attack primitive). It reports an
// error if the block has no tag.
func (ms *MACStore) Tamper(b addr.Block, bit int) error {
	t := ms.tags.Lookup(b.Index())
	if t == nil {
		return fmt.Errorf("meta: no MAC for block %#x", b.Addr())
	}
	t[(bit/8)%crypto.MACSize] ^= 1 << (bit % 8)
	return nil
}

// MACLineAddr returns the pseudo-address keying the block's MAC line
// into a mem.Cache.
func MACLineAddr(b addr.Block) uint64 { return b.MACLine() << addr.BlockShift }
