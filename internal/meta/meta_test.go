package meta

import (
	"testing"
	"testing/quick"

	"secpb/internal/addr"
	"secpb/internal/crypto"
)

func TestCounterStartsAtZero(t *testing.T) {
	cs := NewCounterStore()
	if v := cs.Value(addr.BlockOf(0x5000)); v != 0 {
		t.Errorf("fresh counter = %d, want 0", v)
	}
	if cs.Pages() != 1 {
		t.Errorf("pages = %d", cs.Pages())
	}
}

func TestIncrementMonotonic(t *testing.T) {
	cs := NewCounterStore()
	b := addr.BlockOf(0x1000)
	var prev uint64
	for i := 0; i < 300; i++ { // crosses one minor overflow
		v, _ := cs.Increment(b)
		if v <= prev && i > 0 {
			t.Fatalf("counter not monotonic at step %d: %d <= %d", i, v, prev)
		}
		prev = v
	}
}

func TestMinorOverflowReencryptsPage(t *testing.T) {
	cs := NewCounterStore()
	b := addr.BlockOf(0x2000)
	sib := addr.BlockOf(0x2040) // same page
	cs.Increment(sib)
	if cs.Value(sib) != 1 {
		t.Fatalf("sibling counter = %d", cs.Value(sib))
	}
	var overflowed bool
	for i := 0; i < 256; i++ {
		_, ov := cs.Increment(b)
		overflowed = overflowed || ov
	}
	if !overflowed {
		t.Fatal("256 increments did not overflow an 8-bit minor counter")
	}
	if cs.Overflows() != 1 {
		t.Errorf("overflow count = %d", cs.Overflows())
	}
	// After overflow the whole page's minors reset under a new major:
	// the sibling's combined value must have changed (its old pad is
	// dead and it must be re-encrypted).
	if cs.Value(sib) != 1<<MinorBits {
		t.Errorf("sibling counter after overflow = %d, want %d", cs.Value(sib), 1<<MinorBits)
	}
}

func TestCountersIndependentAcrossPages(t *testing.T) {
	cs := NewCounterStore()
	a := addr.BlockOf(0x1000)
	b := addr.BlockOf(0x2000)
	cs.Increment(a)
	if cs.Value(b) != 0 {
		t.Error("increment leaked across pages")
	}
}

func TestCounterLineValueLayout(t *testing.T) {
	cl := &CounterLine{Major: 3}
	cl.Minors[5] = 7
	if got := cl.Value(5); got != 3<<MinorBits|7 {
		t.Errorf("Value = %d", got)
	}
}

func TestCounterLineBytesChangeWithContents(t *testing.T) {
	check := func(major uint64, idx uint8, minor uint8) bool {
		cl := &CounterLine{Major: major}
		base := cl.Bytes()
		cl.Minors[int(idx)%addr.BlocksPerPage] = minor
		changed := cl.Bytes()
		if minor == 0 {
			return string(base) == string(changed)
		}
		return string(base) != string(changed)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	cs := NewCounterStore()
	b := addr.BlockOf(0x3000)
	cs.Increment(b)
	snap := cs.Snapshot()
	cs.Increment(b)
	if snap.Value(b) != 1 || cs.Value(b) != 2 {
		t.Errorf("snapshot = %d live = %d", snap.Value(b), cs.Value(b))
	}
}

func TestCounterTamper(t *testing.T) {
	cs := NewCounterStore()
	b := addr.BlockOf(0x4000)
	cs.Increment(b)
	if err := cs.Tamper(b, 99); err != nil {
		t.Fatal(err)
	}
	if cs.Value(b) != 99 {
		t.Errorf("tampered value = %d", cs.Value(b))
	}
	if err := cs.Tamper(addr.BlockOf(0x999000), 1); err == nil {
		t.Error("tampering untouched page succeeded")
	}
}

func TestPeek(t *testing.T) {
	cs := NewCounterStore()
	if _, ok := cs.Peek(7); ok {
		t.Error("Peek materialized a line")
	}
	cs.Line(7)
	if _, ok := cs.Peek(7); !ok {
		t.Error("Peek missed a materialized line")
	}
}

func TestMACStoreRoundTrip(t *testing.T) {
	ms := NewMACStore()
	b := addr.BlockOf(0x1000)
	var tag [crypto.MACSize]byte
	tag[0] = 0xAB
	ms.Put(b, tag)
	got, ok := ms.Get(b)
	if !ok || got != tag {
		t.Fatal("Get after Put failed")
	}
	if err := ms.Verify(b, tag); err != nil {
		t.Errorf("Verify failed: %v", err)
	}
	var wrong [crypto.MACSize]byte
	if err := ms.Verify(b, wrong); err == nil {
		t.Error("Verify accepted wrong tag")
	}
	if err := ms.Verify(addr.BlockOf(0x2000), tag); err == nil {
		t.Error("Verify accepted missing block")
	}
	if ms.Len() != 1 {
		t.Errorf("Len = %d", ms.Len())
	}
}

func TestMACTamperDetected(t *testing.T) {
	ms := NewMACStore()
	b := addr.BlockOf(0x1000)
	var tag [crypto.MACSize]byte
	ms.Put(b, tag)
	if err := ms.Tamper(b, 13); err != nil {
		t.Fatal(err)
	}
	if err := ms.Verify(b, tag); err == nil {
		t.Error("tamper not detected")
	}
	if err := ms.Tamper(addr.BlockOf(0x9000), 0); err == nil {
		t.Error("tampering absent MAC succeeded")
	}
}

func TestMACSnapshot(t *testing.T) {
	ms := NewMACStore()
	b := addr.BlockOf(0x40)
	var tag [crypto.MACSize]byte
	tag[1] = 1
	ms.Put(b, tag)
	snap := ms.Snapshot()
	tag[1] = 2
	ms.Put(b, tag)
	got, _ := snap.Get(b)
	if got[1] != 1 {
		t.Error("snapshot mutated by later Put")
	}
}

func TestLineAddrDistinct(t *testing.T) {
	if LineAddr(1) == LineAddr(2) {
		t.Error("counter line addresses collide")
	}
	b1 := addr.FromIndex(0)
	b2 := addr.FromIndex(8)
	if MACLineAddr(b1) == MACLineAddr(b2) {
		t.Error("MAC line addresses collide across lines")
	}
	if MACLineAddr(b1) != MACLineAddr(addr.FromIndex(7)) {
		t.Error("blocks 0..7 must share a MAC line")
	}
}
