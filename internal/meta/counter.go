// Package meta implements the security metadata stores of the memory
// controller: split counters (major page counter + per-block minor
// counters) and per-block MACs. Both are functional models — they hold
// real values that the recovery and attack experiments verify — with
// cacheability handled by mem.Cache instances keyed on metadata line
// addresses.
package meta

import (
	"encoding/binary"
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/ptable"
)

// MinorBits is the width of a minor (per-block) counter. The paper's
// SecPB entry carries an 8-bit counter field.
const MinorBits = 8

// minorMax is the largest minor counter value before overflow.
const minorMax = 1<<MinorBits - 1

// CounterLine is the split-counter line for one 4KB encryption page: a
// major counter shared by the page and one minor counter per block.
type CounterLine struct {
	Major  uint64
	Minors [addr.BlocksPerPage]uint8
}

// Value returns the combined encryption counter for the block at the
// given in-page offset.
func (cl *CounterLine) Value(offset int) uint64 {
	return cl.Major<<MinorBits | uint64(cl.Minors[offset])
}

// LineBytesLen is the serialized size of a CounterLine.
const LineBytesLen = 8 + addr.BlocksPerPage

// PutBytes serializes the line into buf, which must be at least
// LineBytesLen long. Hot-path callers (the BMT walk on every drain) use
// it with a reusable scratch buffer to avoid a per-walk allocation.
func (cl *CounterLine) PutBytes(buf []byte) {
	binary.LittleEndian.PutUint64(buf, cl.Major)
	copy(buf[8:], cl.Minors[:])
}

// AppendBytes appends the line's serialization to dst and returns the
// extended slice. Replay loops that feed many lines into a BMT batch
// update use it with one reusable scratch buffer instead of allocating
// per line.
func (cl *CounterLine) AppendBytes(dst []byte) []byte {
	var buf [LineBytesLen]byte
	cl.PutBytes(buf[:])
	return append(dst, buf[:]...)
}

// Bytes serializes the line for hashing as a BMT leaf.
func (cl *CounterLine) Bytes() []byte {
	return cl.AppendBytes(make([]byte, 0, LineBytesLen))
}

// CounterStore holds the split counters for the whole PM, created lazily
// (absent pages have all-zero counters). Lines live in a paged
// direct-index table keyed by page number, so the per-store counter
// touch is a radix lookup rather than a map probe; line pointers stay
// valid for the store's lifetime.
type CounterStore struct {
	lines *ptable.Table[CounterLine]
	// overflows counts minor-counter overflows (page re-encryptions).
	overflows uint64
}

// NewCounterStore returns an empty store.
func NewCounterStore() *CounterStore {
	return &CounterStore{lines: ptable.New[CounterLine]()}
}

// Line returns the counter line for a page, creating it if absent.
func (cs *CounterStore) Line(page uint64) *CounterLine {
	cl, _ := cs.lines.GetOrCreate(page)
	return cl
}

// Peek returns the counter line if present, without creating it.
func (cs *CounterStore) Peek(page uint64) (*CounterLine, bool) {
	return cs.lines.Get(page)
}

// Value returns the block's current encryption counter.
func (cs *CounterStore) Value(b addr.Block) uint64 {
	return cs.Line(b.Page()).Value(b.PageOffset())
}

// Increment bumps the block's minor counter, handling overflow by
// incrementing the major counter and resetting the page's minors (a page
// re-encryption event). It returns the new counter value and whether an
// overflow occurred; on overflow the caller must re-encrypt every block
// of the page under its new counter.
func (cs *CounterStore) Increment(b addr.Block) (newValue uint64, overflow bool) {
	cl := cs.Line(b.Page())
	off := b.PageOffset()
	if cl.Minors[off] == minorMax {
		cl.Major++
		for i := range cl.Minors {
			cl.Minors[i] = 0
		}
		cl.Minors[off] = 1
		cs.overflows++
		return cl.Value(off), true
	}
	cl.Minors[off]++
	return cl.Value(off), false
}

// WouldOverflow reports whether the next Increment of the block's minor
// counter would overflow. Callers that must re-encrypt the page before
// the counters reset (the memory controller) check this first.
func (cs *CounterStore) WouldOverflow(b addr.Block) bool {
	cl := cs.lines.Lookup(b.Page())
	return cl != nil && cl.Minors[b.PageOffset()] == minorMax
}

// ForceMajorRollover advances the page's major counter and zeroes all
// minors — the counter-reset half of a page re-encryption. It counts as
// an overflow event.
func (cs *CounterStore) ForceMajorRollover(page uint64) {
	cl := cs.Line(page)
	cl.Major++
	for i := range cl.Minors {
		cl.Minors[i] = 0
	}
	cs.overflows++
}

// Overflows returns the number of page re-encryption events so far.
func (cs *CounterStore) Overflows() uint64 { return cs.overflows }

// Pages returns the number of counter lines materialized.
func (cs *CounterStore) Pages() int { return cs.lines.Len() }

// Snapshot deep-copies the store (used to model the persisted PM image
// at a crash point).
func (cs *CounterStore) Snapshot() *CounterStore {
	return &CounterStore{lines: cs.lines.Clone(), overflows: cs.overflows}
}

// RangeLines calls fn for every materialized counter line in ascending
// page order (deterministic traversal for audits and recovery replay).
func (cs *CounterStore) RangeLines(fn func(page uint64, cl *CounterLine) bool) {
	cs.lines.Range(fn)
}

// Tamper overwrites the stored minor counter of a block — an attack
// primitive used by the integrity tests. It reports an error if the
// page has no materialized counters.
func (cs *CounterStore) Tamper(b addr.Block, minor uint8) error {
	cl := cs.lines.Lookup(b.Page())
	if cl == nil {
		return fmt.Errorf("meta: no counters for page %d", b.Page())
	}
	cl.Minors[b.PageOffset()] = minor
	return nil
}

// LineAddr returns the pseudo-address used to key counter lines into a
// mem.Cache (one 64B line per page).
func LineAddr(page uint64) uint64 { return page << addr.BlockShift }
